package control

import (
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"time"

	"printqueue/internal/pktrec"
	"printqueue/internal/telemetry"
	"printqueue/internal/tracing"
)

// This file implements the sharded ingestion pipeline: the software
// analogue of the Tofino processing every egress port's packets in parallel
// pipeline stages (paper §6). Ports are partitioned across shard workers,
// each fed by a bounded SPSC batch ring, so aggregate throughput scales
// with cores while each port's packets are still processed by exactly one
// goroutine in dequeue order — the invariant every PrintQueue structure
// depends on. Checkpoint register copies run on a separate snapshot
// goroutine (snapshotter), mirroring the paper's double-buffered frozen
// reads over PCIe: the packet path only toggles the write selector.

// PipelineConfig tunes the sharded ingestion pipeline.
type PipelineConfig struct {
	// Shards is the number of ingestion worker goroutines. Ports are
	// assigned round-robin by activation rank. Default (0):
	// min(#ports, GOMAXPROCS).
	Shards int
	// BatchSize is the number of packets per ring batch. Default 256.
	BatchSize int
	// RingDepth is the number of batches buffered per shard before the
	// producer blocks. Default 8.
	RingDepth int
	// SnapshotQueue bounds the frozen reads queued to the snapshot
	// goroutine before flips block. Default 2*#ports (both periodic sets
	// of every port in flight).
	SnapshotQueue int
}

func (c *PipelineConfig) normalize(numPorts int) {
	if c.Shards <= 0 {
		c.Shards = numPorts
		if p := runtime.GOMAXPROCS(0); c.Shards > p {
			c.Shards = p
		}
	}
	if c.Shards > numPorts {
		c.Shards = numPorts
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 256
	}
	if c.RingDepth <= 0 {
		c.RingDepth = 8
	}
	if c.SnapshotQueue <= 0 {
		c.SnapshotQueue = 2 * numPorts
	}
}

// shard is one worker's input queue plus the producer-side batch being
// filled for it, and the shard's telemetry series. The producer-side
// metrics (occupancy, backpressure) are updated per batch push, never per
// packet, so the Ingest hot path stays allocation- and contention-free.
type shard struct {
	ring *spscRing
	cur  *packetBatch

	occupancy      *telemetry.Gauge   // ring batches queued, sampled at push/pop
	highWater      *telemetry.Gauge   // max occupancy seen
	backpressureNs *telemetry.Counter // ns the producer spent blocked on a full ring
	batches        *telemetry.Counter // batches processed by the worker
	packets        *telemetry.Counter // packets processed by the worker

	// Event-plane state, owned by the single ingestion producer. Events are
	// edge-triggered: one record per new high-watermark crossing and one per
	// backpressure episode, so a sustained stall does not flood the event
	// ring and the untriggered path adds only branch tests per batch.
	subject  string // "shard=N", precomputed so event records don't allocate it
	hwSeen   int64  // highest occupancy already reported as an event
	blocked  bool   // inside a backpressure episode (last push waited)
	hwThresh int64  // occupancy at which high-watermark events start firing
}

// Pipeline drives a System through sharded, batched ingestion. Ingest must
// be called from a single goroutine with packets in per-port dequeue order
// (the order the traffic manager emits them); the pipeline fans them out to
// the port's shard worker. Close flushes, drains the workers and the
// snapshot goroutine, and returns the System to synchronous (serial) mode.
type Pipeline struct {
	sys    *System
	cfg    PipelineConfig
	shards []*shard
	// shardOf maps a port id to its shard (dense, like System.portTab).
	shardOf []*shard
	pool    sync.Pool
	wg      sync.WaitGroup
	closed  bool
	flushes *telemetry.Counter
}

// NewPipeline builds and starts a pipeline over a System. The System must
// not be driven by direct OnDequeue calls (or a second pipeline) while the
// pipeline is open.
func NewPipeline(sys *System, cfg PipelineConfig) (*Pipeline, error) {
	cfg.normalize(len(sys.cfg.Ports))
	if err := sys.startSnapshotter(cfg.SnapshotQueue); err != nil {
		return nil, err
	}
	pl := &Pipeline{sys: sys, cfg: cfg}
	pl.pool.New = func() any {
		return &packetBatch{pkts: make([]pktrec.Packet, 0, cfg.BatchSize)}
	}
	reg := sys.telemetry
	pl.flushes = reg.Counter("printqueue_pipeline_flushes_total",
		"Explicit flushes of partially filled ingestion batches.")
	pl.shards = make([]*shard, cfg.Shards)
	for i := range pl.shards {
		id := telemetry.L("shard", strconv.Itoa(i))
		pl.shards[i] = &shard{
			ring:     newSPSCRing(cfg.RingDepth),
			subject:  "shard=" + strconv.Itoa(i),
			hwThresh: int64(cfg.RingDepth+1) / 2,
			occupancy: reg.Gauge("printqueue_pipeline_shard_ring_occupancy",
				"Batches queued in the shard's ingestion ring.", id),
			highWater: reg.Gauge("printqueue_pipeline_shard_ring_high_watermark",
				"Highest ring occupancy observed since the system started.", id),
			backpressureNs: reg.Counter("printqueue_pipeline_backpressure_wait_ns_total",
				"Nanoseconds the ingestion producer spent blocked on a full shard ring.", id),
			batches: reg.Counter("printqueue_pipeline_batches_total",
				"Packet batches processed by the shard worker.", id),
			packets: reg.Counter("printqueue_pipeline_packets_total",
				"Packets processed by the shard worker.", id),
		}
	}
	pl.shardOf = make([]*shard, len(sys.portTab))
	for rank, port := range sys.cfg.Ports {
		pl.shardOf[port] = pl.shards[rank%cfg.Shards]
	}
	for _, sh := range pl.shards {
		pl.wg.Add(1)
		go pl.worker(sh)
	}
	sys.pipe.Store(pl)
	sys.pipeEver.Store(true)
	return pl, nil
}

// pushBatch hands a filled batch to the shard ring and samples the
// producer-side metrics: occupancy (with its high-watermark) and any
// backpressure stall the push suffered. It also mirrors the paper's
// data-plane triggers into the event log: a backpressure event when a push
// first blocks (episode start, value = ns stalled) and a high-watermark
// event each time occupancy reaches a new maximum at or above half the
// ring depth.
func (pl *Pipeline) pushBatch(sh *shard, b *packetBatch) {
	waited, _ := sh.ring.push(b)
	if waited > 0 {
		sh.backpressureNs.Add(waited)
		if !sh.blocked {
			sh.blocked = true
			pl.sys.Events().Record(tracing.EventBackpressure, sh.subject, waited, 0)
		}
	} else {
		sh.blocked = false
	}
	occ := sh.ring.len()
	sh.occupancy.Set(occ)
	sh.highWater.Max(occ)
	if occ > sh.hwSeen {
		if occ >= sh.hwThresh {
			pl.sys.Events().Record(tracing.EventRingHighWater, sh.subject, occ, 0)
		}
		sh.hwSeen = occ
	}
}

// Ingest hands one dequeued packet to its port's shard. The packet is
// copied by value into the current batch; the caller may reuse *p. Packets
// for ports without PrintQueue are dropped, as in OnDequeue.
func (pl *Pipeline) Ingest(p *pktrec.Packet) {
	if p.Port < 0 || p.Port >= len(pl.shardOf) {
		return
	}
	sh := pl.shardOf[p.Port]
	if sh == nil {
		return
	}
	b := sh.cur
	if b == nil {
		b = pl.pool.Get().(*packetBatch)
		sh.cur = b
	}
	b.pkts = append(b.pkts, *p)
	if len(b.pkts) == cap(b.pkts) {
		pl.pushBatch(sh, b)
		sh.cur = nil
	}
}

// Flush pushes every partially filled batch to its shard so the workers see
// all packets ingested so far. It does not wait for them to be processed.
func (pl *Pipeline) Flush() {
	pl.flushes.Inc()
	for _, sh := range pl.shards {
		if sh.cur != nil && len(sh.cur.pkts) > 0 {
			pl.pushBatch(sh, sh.cur)
			sh.cur = nil
		}
	}
}

// Close flushes remaining batches, waits for the shard workers to drain,
// stops the snapshot goroutine (retiring any in-flight frozen reads), and
// returns the System to synchronous mode. After Close, Finalize and queries
// observe every ingested packet. Close is idempotent.
func (pl *Pipeline) Close() {
	if pl.closed {
		return
	}
	pl.closed = true
	pl.Flush()
	for _, sh := range pl.shards {
		sh.ring.close()
	}
	pl.wg.Wait()
	pl.sys.stopSnapshotter()
	pl.sys.pipe.CompareAndSwap(pl, nil)
}

// worker is one shard's ingestion goroutine: it owns its ports exclusively,
// so the per-port serial path (register updates, flips, DP queries) runs
// unmodified and in dequeue order.
func (pl *Pipeline) worker(sh *shard) {
	defer pl.wg.Done()
	sys := pl.sys
	for {
		b, ok := sh.ring.pop()
		if !ok {
			return
		}
		sh.occupancy.Set(sh.ring.len())
		for i := range b.pkts {
			sys.OnDequeue(&b.pkts[i])
		}
		sh.batches.Inc()
		sh.packets.Add(int64(len(b.pkts)))
		b.pkts = b.pkts[:0]
		pl.pool.Put(b)
	}
}

// snapJob is one frozen read handed to the snapshot goroutine: the register
// set of a port frozen at freezeTime, covering (prevFreeze, freezeTime].
type snapJob struct {
	ps         *portState
	sel        int
	freezeTime uint64
	prevFreeze uint64
	// frozenAt is the wall-clock instant of the flip, for the
	// freeze-to-retire latency histogram: queueing delay behind earlier
	// jobs plus the register copy itself.
	frozenAt time.Time
}

// snapshotter is the background checkpoint goroutine. A single goroutine
// consumes jobs FIFO, which preserves each port's checkpoint order (jobs
// for one port are enqueued by its one shard worker, in flip order) —
// queryCheckpoints and nearestCheckpoint rely on the history being sorted
// by freeze time.
type snapshotter struct {
	sys *System
	ch  chan snapJob
	wg  sync.WaitGroup
}

func (s *System) startSnapshotter(queue int) error {
	if s.snap != nil {
		return fmt.Errorf("control: pipeline already attached to this system")
	}
	sn := &snapshotter{sys: s, ch: make(chan snapJob, queue)}
	sn.wg.Add(1)
	go sn.run()
	s.snap = sn
	return nil
}

// stopSnapshotter drains outstanding jobs and uninstalls the snapshotter;
// subsequent flips snapshot synchronously again. Must only be called once
// every ingestion worker has stopped.
func (s *System) stopSnapshotter() {
	sn := s.snap
	if sn == nil {
		return
	}
	close(sn.ch)
	sn.wg.Wait()
	s.snap = nil
}

func (sn *snapshotter) enqueue(job snapJob) { sn.ch <- job }

func (sn *snapshotter) run() {
	defer sn.wg.Done()
	for job := range sn.ch {
		cp := sn.sys.snapshotSet(job.ps, job.sel, job.freezeTime, job.prevFreeze, false)
		// The durable-log append happens inside retireCheckpoint, before the
		// pending bit clears: a data-plane freeze that drained this read can
		// therefore never append its (newer) checkpoint ahead of this one.
		sn.sys.retireCheckpoint(job.ps, cp)
		job.ps.clearPending(job.sel)
		sn.sys.stats.freezeRetireNs.Observe(uint64(time.Since(job.frozenAt).Nanoseconds()))
	}
}
