// Package registers models the stateful register arrays PrintQueue allocates
// on the switch ASIC, including the Figure-8 decomposition of the register
// index:
//
//	| 1 bit dp-query | 1 bit periodic flip | q port-prefix bits | k index bits |
//
// A File holds the backing storage for one logical array across all
// (dp, flip, port) partitions; views into a partition are plain slices, so
// the data-plane algorithms read and write them exactly as P4 register
// actions would, while the control plane copies partitions out ("frozen
// register reads") with read-cost accounting.
package registers

import "fmt"

// Layout describes the index decomposition of a register file.
type Layout struct {
	// PortBits is q: log2 of the number of per-port partitions. The paper
	// rounds the number of activated ports up to the nearest power of two,
	// r(#ports) = 2^q.
	PortBits int
	// IndexBits is k: log2 of the number of cells per partition.
	IndexBits int
}

// PortBitsFor returns the number of port-prefix bits q needed for n active
// ports: ceil(log2(n)), minimum 0.
func PortBitsFor(n int) int {
	q := 0
	for 1<<q < n {
		q++
	}
	return q
}

// Partitions returns r(#ports) = 2^q.
func (l Layout) Partitions() int { return 1 << l.PortBits }

// PartitionSize returns the number of cells in one (dp, flip, port)
// partition: 2^k.
func (l Layout) PartitionSize() int { return 1 << l.IndexBits }

// TotalEntries returns the full register array length: 2^(2+q+k). The
// leading two bits are the dp-query and periodic-flip selectors.
func (l Layout) TotalEntries() int { return 1 << (2 + l.PortBits + l.IndexBits) }

// Compose builds a full register index from the selector bits, the port
// prefix, and the cell index, exactly as Figure 8 lays them out.
func (l Layout) Compose(dp, flip bool, port, idx int) int {
	if port < 0 || port >= l.Partitions() {
		panic(fmt.Sprintf("registers: port prefix %d out of range (q=%d)", port, l.PortBits))
	}
	if idx < 0 || idx >= l.PartitionSize() {
		panic(fmt.Sprintf("registers: index %d out of range (k=%d)", idx, l.IndexBits))
	}
	r := idx | port<<l.IndexBits
	if flip {
		r |= 1 << (l.PortBits + l.IndexBits)
	}
	if dp {
		r |= 1 << (1 + l.PortBits + l.IndexBits)
	}
	return r
}

// Decompose splits a full register index back into its components.
func (l Layout) Decompose(r int) (dp, flip bool, port, idx int) {
	idx = r & (l.PartitionSize() - 1)
	r >>= l.IndexBits
	port = r & (l.Partitions() - 1)
	r >>= l.PortBits
	flip = r&1 == 1
	dp = r&2 == 2
	return dp, flip, port, idx
}

// File is a register array of entries E with Figure-8 partitioning. The
// zero value is not usable; construct with NewFile.
type File[E any] struct {
	layout Layout
	cells  []E

	// EntriesRead counts cells copied out by Read, modelling the
	// control-plane I/O the paper's Figure 13 budget constrains.
	EntriesRead int64
}

// NewFile allocates a register file with the given layout.
func NewFile[E any](layout Layout) *File[E] {
	return &File[E]{
		layout: layout,
		cells:  make([]E, layout.TotalEntries()),
	}
}

// Layout returns the file's index layout.
func (f *File[E]) Layout() Layout { return f.layout }

// View returns the (dp, flip, port) partition as a mutable slice of length
// 2^k aliasing the backing store. Data-plane code indexes it with the k-bit
// cell index.
func (f *File[E]) View(dp, flip bool, port int) []E {
	base := f.layout.Compose(dp, flip, port, 0)
	return f.cells[base : base+f.layout.PartitionSize() : base+f.layout.PartitionSize()]
}

// Read copies the (dp, flip, port) partition out, charging its size to the
// read counter. It models one frozen register read.
func (f *File[E]) Read(dp, flip bool, port int) []E {
	src := f.View(dp, flip, port)
	out := make([]E, len(src))
	copy(out, src)
	f.EntriesRead += int64(len(src))
	return out
}
