package registers

import (
	"testing"
	"testing/quick"
)

func TestPortBitsFor(t *testing.T) {
	tests := []struct{ n, want int }{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4}, {10, 4}, {16, 4},
	}
	for _, tt := range tests {
		if got := PortBitsFor(tt.n); got != tt.want {
			t.Errorf("PortBitsFor(%d) = %d, want %d", tt.n, got, tt.want)
		}
	}
}

func TestLayoutSizes(t *testing.T) {
	l := Layout{PortBits: 2, IndexBits: 12}
	if got := l.Partitions(); got != 4 {
		t.Errorf("Partitions = %d, want 4", got)
	}
	if got := l.PartitionSize(); got != 4096 {
		t.Errorf("PartitionSize = %d, want 4096", got)
	}
	if got := l.TotalEntries(); got != 1<<16 {
		t.Errorf("TotalEntries = %d, want %d", got, 1<<16)
	}
}

// TestComposeFigure8 checks the exact bit layout of the paper's Figure 8:
// | dp | flip | q port bits | k index bits |.
func TestComposeFigure8(t *testing.T) {
	l := Layout{PortBits: 3, IndexBits: 12}
	idx := l.Compose(true, false, 5, 0x123)
	want := 1<<(1+3+12) | 0<<(3+12) | 5<<12 | 0x123
	if idx != want {
		t.Fatalf("Compose = %#x, want %#x", idx, want)
	}
	idx = l.Compose(false, true, 0, 0)
	if want := 1 << 15; idx != want {
		t.Fatalf("flip bit = %#x, want %#x", idx, want)
	}
}

// TestComposeDecomposeRoundTrip property-checks the bijection.
func TestComposeDecomposeRoundTrip(t *testing.T) {
	l := Layout{PortBits: 4, IndexBits: 10}
	f := func(dp, flip bool, port uint8, idx uint16) bool {
		p := int(port) & (l.Partitions() - 1)
		i := int(idx) & (l.PartitionSize() - 1)
		gdp, gflip, gport, gidx := l.Decompose(l.Compose(dp, flip, p, i))
		return gdp == dp && gflip == flip && gport == p && gidx == i
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestComposePanics(t *testing.T) {
	l := Layout{PortBits: 1, IndexBits: 4}
	for _, fn := range []func(){
		func() { l.Compose(false, false, 2, 0) },  // port out of range
		func() { l.Compose(false, false, -1, 0) }, // negative port
		func() { l.Compose(false, false, 0, 16) }, // index out of range
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestViewAliasing(t *testing.T) {
	f := NewFile[int](Layout{PortBits: 1, IndexBits: 4})
	a := f.View(false, false, 0)
	b := f.View(false, false, 1)
	flip := f.View(false, true, 0)
	a[3] = 42
	b[3] = 7
	flip[3] = 9
	if got := f.View(false, false, 0)[3]; got != 42 {
		t.Fatalf("view not aliased: %d", got)
	}
	// Partitions are disjoint.
	if a[3] != 42 || b[3] != 7 || flip[3] != 9 {
		t.Fatal("partitions overlap")
	}
	// Views have exact length and cannot grow into neighbours.
	if len(a) != 16 || cap(a) != 16 {
		t.Fatalf("view len/cap = %d/%d, want 16/16", len(a), cap(a))
	}
}

func TestReadAccounting(t *testing.T) {
	f := NewFile[int](Layout{PortBits: 0, IndexBits: 3})
	f.View(false, false, 0)[2] = 5
	out := f.Read(false, false, 0)
	if out[2] != 5 {
		t.Fatalf("read content = %v", out)
	}
	if f.EntriesRead != 8 {
		t.Fatalf("EntriesRead = %d, want 8", f.EntriesRead)
	}
	// Reads are copies: mutating the result leaves the file intact.
	out[2] = 99
	if got := f.View(false, false, 0)[2]; got != 5 {
		t.Fatalf("read aliased storage: %d", got)
	}
}
