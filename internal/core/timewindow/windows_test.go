package timewindow

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"printqueue/internal/flow"
)

func fkey(n uint32) flow.Key {
	return flow.Key{
		SrcIP:   [4]byte{10, byte(n >> 16), byte(n >> 8), byte(n)},
		DstIP:   [4]byte{10, 0, 0, 1},
		SrcPort: uint16(1000 + n%1000),
		DstPort: 80,
		Proto:   flow.ProtoTCP,
	}
}

// smallConfig is easy to reason about: 4-cell windows, 1 ns base cells.
func smallConfig() Config {
	return Config{M0: 0, K: 2, Alpha: 1, T: 3, MinPktTxDelayNs: 1.25}
}

func TestNewStorageValidation(t *testing.T) {
	cfg := smallConfig()
	if _, err := New(cfg, nil); err != nil {
		t.Fatalf("nil storage: %v", err)
	}
	bad := make([][]Cell, cfg.T-1)
	if _, err := New(cfg, bad); err == nil {
		t.Fatal("wrong window count accepted")
	}
	bad = make([][]Cell, cfg.T)
	for i := range bad {
		bad[i] = make([]Cell, 3) // not 2^k
	}
	if _, err := New(cfg, bad); err == nil {
		t.Fatal("wrong cell count accepted")
	}
	if _, err := New(Config{}, nil); err == nil {
		t.Fatal("invalid config accepted")
	}
}

// cell returns window i's cell j, for assertions.
func cellAt(w *Windows, i, j int) Cell { return w.windows[i][j] }

func TestInsertPlacesByTTS(t *testing.T) {
	w, _ := New(smallConfig(), nil)
	// m0=0, k=2: timestamp 6 -> TTS 6 -> cycle 1, index 2.
	w.Insert(fkey(1), 6)
	got := cellAt(w, 0, 2)
	if !got.Valid || got.Flow != fkey(1) || got.CycleID != 1 {
		t.Fatalf("cell = %+v, want flow 1 cycle 1", got)
	}
	if w.Inserted() != 1 {
		t.Fatalf("Inserted = %d, want 1", w.Inserted())
	}
}

func TestPassingRuleOneShot(t *testing.T) {
	// The evicted packet is passed iff the new packet's cycle ID exceeds
	// the evicted one's by exactly one.
	t.Run("same cycle drops", func(t *testing.T) {
		w, _ := New(smallConfig(), nil)
		w.Insert(fkey(1), 2) // cycle 0, index 2
		w.Insert(fkey(2), 2) // same cell, same cycle
		if got := cellAt(w, 0, 2); got.Flow != fkey(2) {
			t.Fatalf("newest not stored: %+v", got)
		}
		if got := cellAt(w, 1, 1); got.Valid {
			t.Fatalf("same-cycle eviction must not pass, window 1 got %+v", got)
		}
	})
	t.Run("next cycle passes", func(t *testing.T) {
		w, _ := New(smallConfig(), nil)
		w.Insert(fkey(1), 2) // TTS 2: cycle 0, index 2
		w.Insert(fkey(2), 6) // TTS 6: cycle 1, index 2 -> evicts and passes flow 1
		// Evicted TTS 2 >> alpha(1) = 1: window 1 cell 1.
		got := cellAt(w, 1, 1)
		if !got.Valid || got.Flow != fkey(1) {
			t.Fatalf("window 1 cell 1 = %+v, want flow 1", got)
		}
		if got.CycleID != 0 {
			t.Fatalf("window 1 cycle = %d, want 0", got.CycleID)
		}
	})
	t.Run("distant cycle drops", func(t *testing.T) {
		w, _ := New(smallConfig(), nil)
		w.Insert(fkey(1), 2)  // cycle 0
		w.Insert(fkey(2), 10) // TTS 10: cycle 2, index 2 -> too far, drop
		for j := 0; j < 4; j++ {
			if got := cellAt(w, 1, j); got.Valid {
				t.Fatalf("window 1 cell %d unexpectedly filled: %+v", j, got)
			}
		}
	})
	t.Run("empty cell never passes", func(t *testing.T) {
		w, _ := New(smallConfig(), nil)
		w.Insert(fkey(1), 6) // cycle 1 into empty cell: nothing to pass
		for j := 0; j < 4; j++ {
			if got := cellAt(w, 1, j); got.Valid {
				t.Fatalf("window 1 cell %d unexpectedly filled: %+v", j, got)
			}
		}
	})
}

// TestPaperShiftExample checks the §4.2 worked example: with alpha=1, k=12,
// window-0 TTSes 0x3fff000 and 0x3fff001 map to the same cell of window 1
// with TTS 0x1fff800.
func TestPaperShiftExample(t *testing.T) {
	cfg := Config{M0: 0, K: 12, Alpha: 1, T: 2, MinPktTxDelayNs: 1.25}
	ttsA, ttsB := uint64(0x3fff000), uint64(0x3fff001)
	nextA := ttsA >> cfg.Alpha
	nextB := ttsB >> cfg.Alpha
	if nextA != nextB || nextA != 0x1fff800 {
		t.Fatalf("shifted TTS = %#x, %#x; want both 0x1fff800", nextA, nextB)
	}
	_, idxA := cfg.Split(nextA)
	_, idxB := cfg.Split(nextB)
	if idxA != idxB {
		t.Fatalf("indices differ: %d vs %d", idxA, idxB)
	}
}

// TestCascade pushes a packet through all three windows via successive
// evictions and checks it survives with the right position.
func TestCascade(t *testing.T) {
	w, _ := New(smallConfig(), nil)
	// Window 0, cell 1: TTS 1 (cycle 0), TTS 5 (cycle 1), TTS 9 (cycle 2).
	w.Insert(fkey(1), 1) // sits in w0
	w.Insert(fkey(2), 5) // evicts 1 -> w1 cell 0 (TTS 1>>1 = 0: cycle 0, idx 0)
	if got := cellAt(w, 1, 0); !got.Valid || got.Flow != fkey(1) {
		t.Fatalf("w1[0] = %+v, want flow 1", got)
	}
	// Now evict flow 1 from w1: need a w1-cell-0 packet with w1-cycle 1,
	// i.e. w0 TTS 8 or 9 (>>1 = 4: cycle 1, idx 0) arriving as an eviction
	// from w0. TTS 9 = cycle 2, idx 1 in w0; evicting it requires TTS 13.
	w.Insert(fkey(3), 9) // w0 cell 1 cycle 2: evicts flow 2 (cycle 1->2: pass to w1)
	// flow 2 TTS 5 >> 1 = 2: w1 cell 2 cycle 0.
	if got := cellAt(w, 1, 2); !got.Valid || got.Flow != fkey(2) {
		t.Fatalf("w1[2] = %+v, want flow 2", got)
	}
	w.Insert(fkey(4), 13) // w0 cell 1 cycle 3: evicts flow 3 TTS 9 -> w1 cell 0 cycle 1
	// In w1 cell 0: incoming flow 3 (cycle 1) evicts flow 1 (cycle 0):
	// diff exactly 1 -> flow 1 passes to w2: TTS 0 >> 1 = 0: cell 0 cycle 0.
	if got := cellAt(w, 1, 0); !got.Valid || got.Flow != fkey(3) {
		t.Fatalf("w1[0] = %+v, want flow 3", got)
	}
	if got := cellAt(w, 2, 0); !got.Valid || got.Flow != fkey(1) {
		t.Fatalf("w2[0] = %+v, want flow 1 after double cascade", got)
	}
}

func TestSnapshotIsolation(t *testing.T) {
	w, _ := New(smallConfig(), nil)
	w.Insert(fkey(1), 1)
	snap := w.Snapshot()
	w.Insert(fkey(2), 1) // overwrite after snapshot
	f := snap.Filter()
	counts := f.Query(0, 16)
	if counts[fkey(1)] != 1 || counts[fkey(2)] != 0 {
		t.Fatalf("snapshot not isolated: %v", counts)
	}
}

func TestEntriesPerSnapshot(t *testing.T) {
	if got := smallConfig().EntriesPerSnapshot(); got != 3*4 {
		t.Fatalf("EntriesPerSnapshot = %d, want 12", got)
	}
}

// TestMappingInvariants property-checks the TTS arithmetic: for any
// timestamp, (cycle << k | index) reconstructs the TTS, and the window-i
// cell period contains the timestamp.
func TestMappingInvariants(t *testing.T) {
	cfg := Config{M0: 6, K: 12, Alpha: 2, T: 4, MinPktTxDelayNs: 80}
	f := func(ts uint64) bool {
		ts %= uint64(1) << 62
		tts := cfg.TTS(ts)
		cycle, idx := cfg.Split(tts)
		if cycle<<cfg.K|uint64(idx) != tts {
			return false
		}
		// The cell's time span contains ts.
		start := tts << cfg.M0
		return ts >= start && ts < start+cfg.CellPeriod(0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestNewestInvariant property-checks the passing rule's guarantee: "when
// a packet is passed into a given time window, it is guaranteed to be the
// newest one" — i.e. a cell's stored cycle never decreases.
func TestNewestInvariant(t *testing.T) {
	cfg := smallConfig()
	w, _ := New(cfg, nil)
	rng := rand.New(rand.NewPCG(1, 2))
	prevCycles := make([][]uint64, cfg.T)
	for i := range prevCycles {
		prevCycles[i] = make([]uint64, cfg.Cells())
	}
	var ts uint64
	for n := 0; n < 10000; n++ {
		ts += uint64(rng.IntN(3)) // non-decreasing timestamps
		w.Insert(fkey(uint32(rng.IntN(8))), ts)
		for i := 0; i < cfg.T; i++ {
			for j := 0; j < cfg.Cells(); j++ {
				c := cellAt(w, i, j)
				if !c.Valid {
					continue
				}
				if c.CycleID < prevCycles[i][j] {
					t.Fatalf("window %d cell %d cycle went backwards: %d -> %d",
						i, j, prevCycles[i][j], c.CycleID)
				}
				prevCycles[i][j] = c.CycleID
			}
		}
	}
}

// TestAblationAlwaysPass confirms the ablation variant floods deeper
// windows compared with the one-shot rule under sparse traffic.
func TestAblationAlwaysPass(t *testing.T) {
	cfg := smallConfig()
	oneShot, _ := New(cfg, nil)
	always, _ := New(cfg, nil)
	// Sparse traffic: one packet every 3 cycles, so the one-shot rule
	// never passes, but always-pass keeps promoting stale packets.
	for i := 0; i < 50; i++ {
		ts := uint64(i) * 12 // every 3 cycles of window 0
		oneShot.Insert(fkey(uint32(i)), ts)
		always.InsertAblationAlwaysPass(fkey(uint32(i)), ts)
	}
	oneDeep := oneShot.Snapshot()
	alwaysDeep := always.Snapshot()
	countValid := func(s *Snapshot, i int) int {
		n := 0
		for _, c := range s.windows[i] {
			if c.Valid {
				n++
			}
		}
		return n
	}
	if got := countValid(oneDeep, 1); got != 0 {
		t.Fatalf("one-shot passed %d packets to window 1 under sparse traffic, want 0", got)
	}
	if got := countValid(alwaysDeep, 1); got == 0 {
		t.Fatal("always-pass ablation passed nothing; expected stale promotions")
	}
}

// TestInsertNoAllocs asserts the steady-state packet path allocates nothing:
// Insert touches only preallocated register cells, so the per-packet cost is
// pure arithmetic plus stores — the property the ingestion pipeline's
// throughput depends on.
func TestInsertNoAllocs(t *testing.T) {
	cfg := Config{M0: 6, K: 12, Alpha: 2, T: 4, MinPktTxDelayNs: 80}
	w, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]flow.Key, 64)
	for i := range keys {
		keys[i] = fkey(uint32(i))
	}
	var ts uint64
	// Warm up past the first cycle so inserts exercise eviction/passing too.
	for i := 0; i < 1<<14; i++ {
		ts += 80
		w.Insert(keys[i&63], ts)
	}
	i := 0
	allocs := testing.AllocsPerRun(10000, func() {
		ts += 80
		w.Insert(keys[i&63], ts)
		i++
	})
	if allocs != 0 {
		t.Fatalf("Insert allocates %.1f objects per packet, want 0", allocs)
	}
}
