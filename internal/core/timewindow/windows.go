package timewindow

import "printqueue/internal/flow"

// Cell is one register entry of a time window: the stored packet's flow ID
// and the cycle ID distinguishing which pass of the ring buffer wrote it.
// Valid distinguishes a never-written cell from cycle 0 (hardware encodes
// this in the flow ID being all-zero; we keep an explicit bit for clarity).
type Cell struct {
	Flow    flow.Key
	CycleID uint64
	Valid   bool
}

// Windows is one register set of T time windows. The data plane inserts
// every dequeued packet; the control plane snapshots the storage for query
// execution.
//
// Storage is externally provided so that a register File partition (one
// (dp, flip, port) view per window) can back it; New allocates private
// storage when none is given.
type Windows struct {
	cfg     Config
	windows [][]Cell // T slices of 2^k cells

	// Hot-path constants hoisted out of Insert's per-window loop: every
	// packet walks up to T windows, so the mask/shift values are computed
	// once at construction instead of being re-derived from cfg per window.
	m0    uint
	k     uint
	alpha uint
	kMask uint64

	inserted uint64   // packets inserted since construction
	passes   []uint64 // passes[i]: packets passed from window i to i+1
}

// New builds a window set over the given storage. storage must contain
// exactly cfg.T slices of cfg.Cells() entries, or be nil to allocate
// privately. The storage is used as-is: pre-existing (stale) contents are
// tolerated, exactly as re-used hardware register sets are, because the
// passing rule and Algorithm 3 discriminate by cycle ID.
func New(cfg Config, storage [][]Cell) (*Windows, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if storage == nil {
		storage = make([][]Cell, cfg.T)
		for i := range storage {
			storage[i] = make([]Cell, cfg.Cells())
		}
	}
	if len(storage) != cfg.T {
		return nil, errStorage(cfg, len(storage))
	}
	for i := range storage {
		if len(storage[i]) != cfg.Cells() {
			return nil, errStorage(cfg, len(storage[i]))
		}
	}
	return &Windows{
		cfg:     cfg,
		windows: storage,
		m0:      cfg.M0,
		k:       cfg.K,
		alpha:   cfg.Alpha,
		kMask:   uint64(cfg.Cells() - 1),
		passes:  make([]uint64, cfg.T),
	}, nil
}

func errStorage(cfg Config, got int) error {
	return &storageError{want: cfg.T, cells: cfg.Cells(), got: got}
}

type storageError struct{ want, cells, got int }

func (e *storageError) Error() string {
	return "timewindow: storage shape mismatch (want " +
		itoa(e.want) + " windows of " + itoa(e.cells) + " cells, got " + itoa(e.got) + ")"
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// Config returns the window set's configuration.
func (w *Windows) Config() Config { return w.cfg }

// Inserted returns the number of packets inserted so far.
func (w *Windows) Inserted() uint64 { return w.inserted }

// Passes returns, per window, how many evicted packets were passed onward
// to the next window — the empirical counterpart of the Theorem 1/2 pass
// probabilities.
func (w *Windows) Passes() []uint64 {
	out := make([]uint64, len(w.passes))
	copy(out, w.passes)
	return out
}

// Insert records a dequeued packet, running Algorithm 1: map the packet to
// its cell in window 0 by trimmed timestamp; on collision, store the newer
// packet and pass the evicted one to the next window if and only if the new
// packet's cycle ID exceeds the evicted one's by exactly one ("one shot" —
// the window period immediately following the evicted packet's arrival).
func (w *Windows) Insert(f flow.Key, deqTS uint64) {
	w.inserted++
	tts := deqTS >> w.m0
	kMask, k, alpha := w.kMask, w.k, w.alpha
	windows := w.windows
	for i := 0; i < len(windows); i++ {
		cells := windows[i]
		idx := int(tts & kMask)
		cycle := tts >> k
		evicted := cells[idx]
		cells[idx] = Cell{Flow: f, CycleID: cycle, Valid: true}
		if !evicted.Valid || cycle != evicted.CycleID+1 {
			// Either nothing to pass, a same-cycle collision (drop the
			// evicted record), or a record too far in the past (deleted
			// asynchronously, as on hardware).
			return
		}
		// Pass the evicted packet to the next window as a new input.
		if i+1 < len(windows) {
			w.passes[i]++
		}
		f = evicted.Flow
		// The evicted packet's own TTS in this window is (cycle-1)<<k | idx;
		// shifting it right by alpha gives its position in the next window.
		tts = (evicted.CycleID<<k | uint64(idx)) >> alpha
	}
}

// InsertAblationAlwaysPass is the ablation variant of Insert that passes
// every evicted packet regardless of cycle distance. It demonstrates why the
// paper's one-shot passing rule matters: without it, stale records flood the
// deeper windows and the Theorem-2 proportionality that Algorithm 2 relies
// on no longer holds.
func (w *Windows) InsertAblationAlwaysPass(f flow.Key, deqTS uint64) {
	w.inserted++
	tts := w.cfg.TTS(deqTS)
	kMask := uint64(w.cfg.Cells() - 1)
	for i := 0; i < w.cfg.T; i++ {
		idx := int(tts & kMask)
		cycle := tts >> w.cfg.K
		evicted := w.windows[i][idx]
		w.windows[i][idx] = Cell{Flow: f, CycleID: cycle, Valid: true}
		if !evicted.Valid || cycle == evicted.CycleID {
			return
		}
		f = evicted.Flow
		tts = (evicted.CycleID<<w.cfg.K | uint64(idx)) >> w.cfg.Alpha
	}
}

// Snapshot copies the current register contents into an immutable Snapshot
// for query execution. It models one frozen register read of the whole set
// and returns the number of register entries copied (for I/O accounting).
// The copy lands in one contiguous backing array (two allocations instead
// of T+1), which matters once snapshots run on the background checkpoint
// goroutine at every flip.
func (w *Windows) Snapshot() *Snapshot {
	per := w.cfg.Cells()
	flat := make([]Cell, w.cfg.T*per)
	cells := make([][]Cell, w.cfg.T)
	for i := range cells {
		dst := flat[i*per : (i+1)*per : (i+1)*per]
		copy(dst, w.windows[i])
		cells[i] = dst
	}
	return &Snapshot{cfg: w.cfg, windows: cells}
}

// EntriesPerSnapshot returns the register entries read per snapshot of this
// window set: T * 2^k.
func (c Config) EntriesPerSnapshot() int { return c.T * c.Cells() }
