package timewindow

import (
	"math"
	"testing"
)

func validConfig() Config {
	return Config{M0: 6, K: 12, Alpha: 2, T: 4, MinPktTxDelayNs: 80}
}

func TestValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
		ok     bool
	}{
		{"paper UW config", func(c *Config) {}, true},
		{"paper WS config", func(c *Config) { c.M0, c.Alpha, c.MinPktTxDelayNs = 10, 1, 1200 }, true},
		{"zero T", func(c *Config) { c.T = 0 }, false},
		{"zero k", func(c *Config) { c.K = 0 }, false},
		{"huge k", func(c *Config) { c.K = 25 }, false},
		{"zero alpha", func(c *Config) { c.Alpha = 0 }, false},
		{"huge alpha", func(c *Config) { c.Alpha = 9 }, false},
		{"timestamp overflow", func(c *Config) { c.M0, c.Alpha, c.T = 30, 8, 8 }, false},
		{"zero delay", func(c *Config) { c.MinPktTxDelayNs = 0 }, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := validConfig()
			tt.mutate(&c)
			err := c.Validate()
			if tt.ok && err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if !tt.ok && err == nil {
				t.Fatal("expected error, got nil")
			}
		})
	}
}

func TestM0ForDelay(t *testing.T) {
	tests := []struct {
		d    float64
		want uint
	}{
		{80, 6},    // UW: 100 B at 10 Gbps
		{1200, 10}, // WS/DM: MTU at 10 Gbps
		{64, 6},    // exact power of two
		{63.9, 5},  // just below
		{1, 0},     // degenerate
		{51.2, 5},  // 64 B at 10 Gbps
	}
	for _, tt := range tests {
		if got := M0ForDelay(tt.d); got != tt.want {
			t.Errorf("M0ForDelay(%v) = %d, want %d", tt.d, got, tt.want)
		}
	}
}

func TestMinPktTxDelay(t *testing.T) {
	if got := MinPktTxDelay(100, 10e9); math.Abs(got-80) > 1e-9 {
		t.Errorf("100B at 10Gbps = %v ns, want 80", got)
	}
	if got := MinPktTxDelay(1500, 10e9); math.Abs(got-1200) > 1e-9 {
		t.Errorf("1500B at 10Gbps = %v ns, want 1200", got)
	}
}

func TestPeriods(t *testing.T) {
	c := validConfig() // m0=6, k=12, alpha=2, T=4
	if got := c.Cells(); got != 4096 {
		t.Fatalf("Cells = %d, want 4096", got)
	}
	// Cell periods: 2^6, 2^8, 2^10, 2^12.
	wantCell := []uint64{64, 256, 1024, 4096}
	for i, w := range wantCell {
		if got := c.CellPeriod(i); got != w {
			t.Errorf("CellPeriod(%d) = %d, want %d", i, got, w)
		}
	}
	// Window periods: cell period * 4096.
	for i, w := range wantCell {
		if got := c.WindowPeriod(i); got != w*4096 {
			t.Errorf("WindowPeriod(%d) = %d, want %d", i, got, w*4096)
		}
	}
	// Set period: sum of window periods = (2^(alpha*T)-1)/(2^alpha-1) * 2^(m0+k).
	var sum uint64
	for i := 0; i < c.T; i++ {
		sum += c.WindowPeriod(i)
	}
	if got := c.SetPeriod(); got != sum {
		t.Errorf("SetPeriod = %d, want %d", got, sum)
	}
	closed := (uint64(1)<<(c.Alpha*uint(c.T)) - 1) / (uint64(1)<<c.Alpha - 1) * (1 << (c.M0 + c.K))
	if got := c.SetPeriod(); got != closed {
		t.Errorf("SetPeriod = %d, closed form %d", got, closed)
	}
}

// TestFigure5 checks the paper's worked TTS decomposition: timestamp
// 0xAAA9105A with m0=7, k=12 splits into cycle 0b1010101010101 and index
// 0b001000100000.
func TestFigure5(t *testing.T) {
	c := Config{M0: 7, K: 12, Alpha: 1, T: 2, MinPktTxDelayNs: 200}
	tts := c.TTS(0xAAA9105A)
	cycle, idx := c.Split(tts)
	if want := uint64(0b1010101010101); cycle != want {
		t.Errorf("cycle = %b, want %b", cycle, want)
	}
	if want := 0b001000100000; idx != want {
		t.Errorf("index = %b, want %b", idx, want)
	}
}

func TestZ0(t *testing.T) {
	c := validConfig()
	if got, want := c.Z0(), 64.0/80.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("Z0 = %v, want %v", got, want)
	}
	// z is clamped below 1 when the cell period exceeds the delay.
	c.MinPktTxDelayNs = 10
	if got := c.Z0(); got >= 1 {
		t.Errorf("Z0 = %v, want < 1", got)
	}
}

func TestCoefficients(t *testing.T) {
	c := validConfig()
	coeff := c.Coefficients()
	if len(coeff) != c.T {
		t.Fatalf("len = %d, want %d", len(coeff), c.T)
	}
	if coeff[0] != 1 {
		t.Fatalf("coefficient[0] = %v, want 1", coeff[0])
	}
	// Hand-computed first step: z = 0.8, p = 1 - 0.64 = 0.36,
	// ratio = z*(1-p^4)/(1-p)/4.
	z := 0.8
	p := 1 - z*z
	want := z * (1 - math.Pow(p, 4)) / (1 - p) / 4
	if math.Abs(coeff[1]-want) > 1e-12 {
		t.Errorf("coefficient[1] = %v, want %v", coeff[1], want)
	}
	// Coefficients are strictly decreasing in (0, 1]: every hop compresses.
	for i := 1; i < len(coeff); i++ {
		if coeff[i] <= 0 || coeff[i] >= coeff[i-1] {
			t.Errorf("coefficient[%d] = %v not in (0, %v)", i, coeff[i], coeff[i-1])
		}
	}
}

func TestCoefficientsAcrossConfigs(t *testing.T) {
	// Larger alpha compresses more: coefficient[1] shrinks as alpha grows.
	prev := math.Inf(1)
	for alpha := uint(1); alpha <= 3; alpha++ {
		c := Config{M0: 6, K: 12, Alpha: alpha, T: 2, MinPktTxDelayNs: 80}
		coeff := c.Coefficients()
		if coeff[1] >= prev {
			t.Errorf("alpha=%d: coefficient[1]=%v not smaller than alpha=%d's %v",
				alpha, coeff[1], alpha-1, prev)
		}
		prev = coeff[1]
	}
}
