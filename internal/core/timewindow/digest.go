package timewindow

import "printqueue/internal/flow"

// On hardware a time-window cell stores a fixed-width flow digest (e.g. a
// 32-bit CRC of the 5-tuple), not the tuple itself; the analysis program
// resolves digests back to flow IDs using state it learns out-of-band
// (ingress flow reports, FlowRadar-style decoders, or prior queries). The
// simulator stores exact keys — the paper notes its accuracy losses "are
// not caused by hash collisions" — but DigestTable lets experiments
// quantify exactly what digest storage would cost for a given digest width.
type DigestTable struct {
	bits  uint
	seed  uint64
	byDig map[uint32][]flow.Key
	known map[flow.Key]bool
}

// NewDigestTable builds a resolver for digests of the given width (1..32
// bits). Hardware typically uses 32; small widths exaggerate collisions for
// study.
func NewDigestTable(bits uint, seed uint64) *DigestTable {
	if bits == 0 || bits > 32 {
		bits = 32
	}
	return &DigestTable{
		bits:  bits,
		seed:  seed,
		byDig: make(map[uint32][]flow.Key),
		known: make(map[flow.Key]bool),
	}
}

// Digest returns the flow's digest at the table's width.
func (d *DigestTable) Digest(k flow.Key) uint32 {
	return k.Hash32(d.seed) & uint32(1<<d.bits-1)
}

// Learn registers a flow the analysis program knows about, so its digest
// can be resolved later. Learning is idempotent.
func (d *DigestTable) Learn(k flow.Key) {
	if d.known[k] {
		return
	}
	d.known[k] = true
	dig := d.Digest(k)
	d.byDig[dig] = append(d.byDig[dig], k)
}

// Resolve returns the known flows sharing a digest (nil if never learned).
func (d *DigestTable) Resolve(dig uint32) []flow.Key { return d.byDig[dig] }

// Collisions returns the number of digests shared by more than one learned
// flow.
func (d *DigestTable) Collisions() int {
	n := 0
	for _, flows := range d.byDig {
		if len(flows) > 1 {
			n++
		}
	}
	return n
}

// ApplyDigests simulates digest-width cell storage on an exact query
// result: counts are first collapsed onto digests (colliding flows merge,
// exactly as the register would conflate them), then resolved back to flow
// IDs, splitting each digest's count evenly over its known candidates (the
// analysis program has no better tiebreak). With 32-bit digests and
// realistic flow counts the result is virtually identical to the input.
func (d *DigestTable) ApplyDigests(c flow.Counts) flow.Counts {
	byDig := make(map[uint32]float64, len(c))
	for k, n := range c {
		d.Learn(k)
		byDig[d.Digest(k)] += n
	}
	out := make(flow.Counts, len(c))
	for dig, n := range byDig {
		candidates := d.Resolve(dig)
		if len(candidates) == 0 {
			continue
		}
		share := n / float64(len(candidates))
		for _, k := range candidates {
			out.Add(k, share)
		}
	}
	return out
}
