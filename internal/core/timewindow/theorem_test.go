package timewindow

import (
	"math"
	"math/rand/v2"
	"testing"
)

// These tests validate the paper's Theorems 1–3 empirically: the analytic
// pass probabilities and the coefficient recursion must match what the data
// structure actually does under line-rate traffic.

// lineRateStream inserts n packets spaced ~d ns apart (line-rate
// forwarding with small jitter, as after queuing) and returns the windows.
func lineRateStream(t testing.TB, cfg Config, n int, seed uint64) *Windows {
	t.Helper()
	w, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(seed, 99))
	var ts uint64
	d := cfg.MinPktTxDelayNs
	for i := 0; i < n; i++ {
		// Near-deterministic line-rate spacing: d +/- 20%.
		ts += uint64(d * (0.8 + 0.4*rng.Float64()))
		w.Insert(fkey(uint32(rng.IntN(64))), ts)
	}
	return w
}

// TestTheorem3FirstWindowZ checks z_0 = 2^m0 / d: the fraction of cells
// receiving a new packet each window period.
func TestTheorem3FirstWindowZ(t *testing.T) {
	cfg := Config{M0: 3, K: 10, Alpha: 1, T: 2, MinPktTxDelayNs: 10}
	n := 400000
	_ = lineRateStream(t, cfg, n, 1)
	// Inserted packets occupy ~z of cell slots: packets per window period
	// = z * 2^k. Equivalently, total span/d packets over span/cellPeriod
	// cell slots = z packets per slot. With <=1 packet per slot (spacing
	// >= 0.8d > cellPeriod), the hit fraction equals z.
	span := float64(n) * cfg.MinPktTxDelayNs
	slots := span / float64(cfg.CellPeriod(0))
	zEmp := float64(n) / slots
	zWant := cfg.Z0()
	if math.Abs(zEmp-zWant) > 0.05 {
		t.Fatalf("empirical z = %.3f, Theorem 3 predicts %.3f", zEmp, zWant)
	}
}

// TestTheorem1PassProbability checks that the per-cell pass probability
// into window 1 is z^2 (a pass needs hits in two consecutive window
// periods).
func TestTheorem1PassProbability(t *testing.T) {
	cfg := Config{M0: 3, K: 10, Alpha: 1, T: 2, MinPktTxDelayNs: 10}
	n := 400000
	w := lineRateStream(t, cfg, n, 2)
	z := cfg.Z0()
	// Expected passes: one potential pass per (cell, window period) with
	// probability z^2. Window periods elapsed ~ n*d / windowPeriod.
	periods := float64(n) * cfg.MinPktTxDelayNs / float64(cfg.WindowPeriod(0))
	expected := z * z * float64(cfg.Cells()) * periods
	got := float64(w.Passes()[0])
	if math.Abs(got-expected)/expected > 0.25 {
		t.Fatalf("passes into window 1 = %v, Theorem 1 predicts ~%v", got, expected)
	}
}

// TestTheorem2Coefficients checks the full coefficient recursion: the
// surviving per-window packet density after filtering matches
// coefficient[i] within tolerance.
func TestTheorem2Coefficients(t *testing.T) {
	cfg := Config{M0: 3, K: 10, Alpha: 2, T: 3, MinPktTxDelayNs: 10}
	w := lineRateStream(t, cfg, 600000, 3)
	coeff := cfg.Coefficients()
	f := w.Snapshot().Filter()
	for i := 0; i < cfg.T; i++ {
		lo, hi := f.WindowSpan(i)
		if hi <= lo {
			t.Fatalf("window %d has no span", i)
		}
		// Clip to the stream's actual extent.
		observed := 0.0
		for _, counts := range f.RawWindowCounts(lo, hi) {
			observed += counts.Total()
		}
		// True packets in the span: span / d.
		truth := float64(hi-lo) / cfg.MinPktTxDelayNs
		ratio := observed / truth
		if math.Abs(ratio-coeff[i])/coeff[i] > 0.3 {
			t.Errorf("window %d: survival ratio %.4f, coefficient[%d] = %.4f",
				i, ratio, i, coeff[i])
		}
	}
}

// TestTheorem2ProportionalRecovery checks the per-flow proportionality the
// recovery relies on: two flows with a 3:1 packet ratio keep roughly that
// ratio in every window's surviving cells.
func TestTheorem2ProportionalRecovery(t *testing.T) {
	cfg := Config{M0: 3, K: 10, Alpha: 1, T: 3, MinPktTxDelayNs: 10}
	w, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(4, 99))
	heavy, light := fkey(1), fkey(2)
	var ts uint64
	for i := 0; i < 600000; i++ {
		ts += uint64(10 * (0.8 + 0.4*rng.Float64()))
		f := heavy
		if rng.IntN(4) == 0 {
			f = light
		}
		w.Insert(f, ts)
	}
	filtered := w.Snapshot().Filter()
	for i := 1; i < cfg.T; i++ {
		lo, hi := filtered.WindowSpan(i)
		counts := filtered.RawWindowCounts(lo, hi)[i]
		if counts[light] == 0 {
			t.Fatalf("window %d lost the light flow entirely", i)
		}
		ratio := counts[heavy] / counts[light]
		if ratio < 2.0 || ratio > 4.5 {
			t.Errorf("window %d: heavy:light = %.2f, want ~3.0 (no flow bias)", i, ratio)
		}
	}
}

// TestRecoveredCountUnbiased: the coefficient-scaled estimate of a
// deep-window interval is an (approximately) unbiased estimator of the true
// count, averaged across seeds.
func TestRecoveredCountUnbiased(t *testing.T) {
	cfg := Config{M0: 3, K: 9, Alpha: 2, T: 3, MinPktTxDelayNs: 10}
	var relErrSum float64
	const trials = 8
	for seed := uint64(0); seed < trials; seed++ {
		w, _ := New(cfg, nil)
		rng := rand.New(rand.NewPCG(seed, 5))
		var ts uint64
		var times []uint64
		for i := 0; i < 200000; i++ {
			ts += uint64(10 * (0.8 + 0.4*rng.Float64()))
			w.Insert(fkey(uint32(rng.IntN(32))), ts)
			times = append(times, ts)
		}
		f := w.Snapshot().Filter()
		lo, hi := f.WindowSpan(1)
		est := f.Query(lo, hi).Total()
		var truth float64
		for _, x := range times {
			if x >= lo && x < hi {
				truth++
			}
		}
		relErrSum += (est - truth) / truth
	}
	if bias := relErrSum / trials; math.Abs(bias) > 0.15 {
		t.Fatalf("mean relative bias %.3f, want ~0", bias)
	}
}
