package timewindow

import (
	"sync"

	"printqueue/internal/flow"
)

// Snapshot is an immutable copy of a window set's registers, as captured by
// a frozen control-plane read.
type Snapshot struct {
	cfg     Config
	windows [][]Cell
}

// Config returns the snapshot's window configuration.
func (s *Snapshot) Config() Config { return s.cfg }

// latestCell scans window 0 for the most recent valid cell and returns its
// window-0 TTS (cycleID<<k | index) — the paper's LatestCell(). ok is false
// if the window holds no valid cell.
func (s *Snapshot) latestCell() (tts uint64, ok bool) {
	k := s.cfg.K
	var best uint64
	for j, c := range s.windows[0] {
		if !c.Valid {
			continue
		}
		t := c.CycleID<<k | uint64(j)
		if !ok || t > best {
			best = t
			ok = true
		}
	}
	return best, ok
}

// Filtered is a snapshot with Algorithm 3 applied: stale cells removed and
// each window's retained anchor recorded. Queries run against it.
type Filtered struct {
	cfg     Config
	windows [][]Cell
	// anchorTTS[i] is the TTS (in window-i coordinates) of the newest cell
	// period retained in window i; window i retains TTS range
	// (anchorTTS[i] - 2^k, anchorTTS[i]].
	anchorTTS []uint64
	// coeff caches cfg.Coefficients(): a Filtered is queried many times
	// (once per checkpoint per interval query), the coefficients never
	// change.
	coeff []float64
	empty bool
}

// Filter implements Algorithm 3. It walks the windows from the most recent
// cell of window 0, retaining only cells in the latest cycle (or, for
// indices beyond the latest cell, the immediately preceding cycle), and
// derives each deeper window's anchor as the most recently passed cell:
// TTS' = (TTS - 2^k) >> alpha.
func (s *Snapshot) Filter() *Filtered {
	f := &Filtered{
		cfg:       s.cfg,
		windows:   make([][]Cell, s.cfg.T),
		anchorTTS: make([]uint64, s.cfg.T),
		coeff:     s.cfg.Coefficients(),
	}
	tts, ok := s.latestCell()
	if !ok {
		f.empty = true
		for i := range f.windows {
			f.windows[i] = make([]Cell, len(s.windows[i]))
		}
		return f
	}
	cells := uint64(s.cfg.Cells())
	for i := 0; i < s.cfg.T; i++ {
		cid, idx := s.cfg.Split(tts)
		f.anchorTTS[i] = tts
		w := make([]Cell, len(s.windows[i]))
		for j, c := range s.windows[i] {
			if !c.Valid {
				continue
			}
			if j <= idx {
				if c.CycleID == cid {
					w[j] = c
				}
			} else if c.CycleID+1 == cid {
				w[j] = c
			}
		}
		f.windows[i] = w
		if tts < cells {
			// The history does not extend past t=0; deeper windows cannot
			// hold anything newer, and the subtraction below would wrap.
			for d := i + 1; d < s.cfg.T; d++ {
				f.windows[d] = make([]Cell, len(s.windows[d]))
			}
			break
		}
		tts = (tts - cells) >> s.cfg.Alpha
	}
	return f
}

// Empty reports whether the filtered snapshot holds no packets at all.
func (f *Filtered) Empty() bool { return f.empty }

// cellSpan returns the absolute dequeue-time range [start, end) covered by
// cell j of window i given its cycle ID.
func (f *Filtered) cellSpan(i int, cycleID uint64, j int) (start, end uint64) {
	tts := cycleID<<f.cfg.K | uint64(j)
	shift := f.cfg.M0 + f.cfg.Alpha*uint(i)
	start = tts << shift
	return start, start + f.cfg.CellPeriod(i)
}

// WindowSpan returns the absolute dequeue-time range (start, end] retained
// by window i after filtering: one full window period ending at the anchor.
func (f *Filtered) WindowSpan(i int) (start, end uint64) {
	if f.empty {
		return 0, 0
	}
	shift := f.cfg.M0 + f.cfg.Alpha*uint(i)
	end = (f.anchorTTS[i] + 1) << shift
	wp := f.cfg.WindowPeriod(i)
	if end < wp {
		return 0, end
	}
	return end - wp, end
}

// RawWindowCounts returns, for each window, the observed (un-recovered)
// per-flow packet counts among surviving cells whose periods overlap
// [start, end). These are the direct register observations; Query applies
// the Algorithm-2 coefficients on top.
func (f *Filtered) RawWindowCounts(start, end uint64) []flow.Counts {
	out := make([]flow.Counts, f.cfg.T)
	for i := range out {
		out[i] = make(flow.Counts)
	}
	if f.empty || end <= start {
		return out
	}
	for i := 0; i < f.cfg.T; i++ {
		for j, c := range f.windows[i] {
			if !c.Valid {
				continue
			}
			lo, hi := f.cellSpan(i, c.CycleID, j)
			if lo < end && hi > start {
				out[i].Add(c.Flow, 1)
			}
		}
	}
	return out
}

// Query estimates the per-flow packet counts dequeued during [start, end):
// it gathers surviving cells per window and divides each window's counts by
// coefficient[i] (Algorithm 2) to recover the pre-compression numbers, then
// aggregates across windows. This answers both direct-culprit queries
// (victim residence interval) and indirect-culprit queries (regime
// interval); the two differ only in the interval supplied.
func (f *Filtered) Query(start, end uint64) flow.Counts {
	total := make(flow.Counts)
	f.queryInto(total, start, end, f.coeff)
	return total
}

// QueryInto accumulates the [start, end) estimate into dst instead of
// allocating a fresh result map. The control plane aggregates one query
// across every checkpoint covering the interval; accumulating directly
// avoids a per-checkpoint Counts allocation and merge. The arithmetic is
// identical to Query (per-window integer counts divided once by the window
// coefficient, windows visited in order), so results are bit-equal.
func (f *Filtered) QueryInto(dst flow.Counts, start, end uint64) {
	f.queryInto(dst, start, end, f.coeff)
}

// QueryWithoutCoefficients is the ablation variant that sums raw window
// observations without Algorithm-2 recovery. Deep-window compression then
// shows up directly as under-estimation.
func (f *Filtered) QueryWithoutCoefficients(start, end uint64) flow.Counts {
	ones := make([]float64, f.cfg.T)
	for i := range ones {
		ones[i] = 1
	}
	total := make(flow.Counts)
	f.queryInto(total, start, end, ones)
	return total
}

// scratchPool recycles the per-window integer count maps used by queryInto,
// so steady-state query execution stops allocating one map per window per
// checkpoint.
var scratchPool = sync.Pool{
	New: func() any { return make(map[flow.Key]int, 64) },
}

func (f *Filtered) queryInto(dst flow.Counts, start, end uint64, coeff []float64) {
	if f.empty || end <= start {
		return
	}
	scratch := scratchPool.Get().(map[flow.Key]int)
	for i := 0; i < f.cfg.T; i++ {
		for j, c := range f.windows[i] {
			if !c.Valid {
				continue
			}
			lo, hi := f.cellSpan(i, c.CycleID, j)
			if lo < end && hi > start {
				scratch[c.Flow]++
			}
		}
		if len(scratch) > 0 {
			ci := coeff[i]
			for fl, n := range scratch {
				dst.Add(fl, float64(n)/ci)
			}
			clear(scratch)
		}
	}
	scratchPool.Put(scratch)
}

// QueryWindow estimates per-flow counts using only window i — the paper's
// Figure-12 per-window accuracy experiment queries a single window's full
// retained period this way.
func (f *Filtered) QueryWindow(i int, start, end uint64) flow.Counts {
	out := make(flow.Counts)
	if f.empty || end <= start || i < 0 || i >= f.cfg.T {
		return out
	}
	coeff := f.coeff[i]
	for j, c := range f.windows[i] {
		if !c.Valid {
			continue
		}
		lo, hi := f.cellSpan(i, c.CycleID, j)
		if lo < end && hi > start {
			out.Add(c.Flow, 1/coeff)
		}
	}
	return out
}

// SurvivingCells returns the number of valid cells per window after
// filtering — a direct observable of the compression process used by tests
// and the ablation benchmarks.
func (f *Filtered) SurvivingCells() []int {
	out := make([]int, f.cfg.T)
	for i := range f.windows {
		n := 0
		for _, c := range f.windows[i] {
			if c.Valid {
				n++
			}
		}
		out[i] = n
	}
	return out
}
