package timewindow

import (
	"sort"
	"unsafe"

	"printqueue/internal/flow"
)

// Snapshot is an immutable copy of a window set's registers, as captured by
// a frozen control-plane read.
type Snapshot struct {
	cfg     Config
	windows [][]Cell
}

// Config returns the snapshot's window configuration.
func (s *Snapshot) Config() Config { return s.cfg }

// Windows exposes the snapshot's raw register contents, one slice of
// cfg.Cells() cells per window. The caller must treat the cells as
// read-only; the checkpoint codec walks them to build its compact on-disk
// encoding.
func (s *Snapshot) Windows() [][]Cell { return s.windows }

// NewSnapshot reconstitutes a Snapshot from decoded register contents — the
// inverse of Windows(), used by the on-disk checkpoint codec. The storage is
// adopted, not copied: windows must contain exactly cfg.T slices of
// cfg.Cells() cells and must not be mutated afterwards. A snapshot rebuilt
// from the cells of another snapshot is bit-identical to it, so queries over
// the two produce the same results.
func NewSnapshot(cfg Config, windows [][]Cell) (*Snapshot, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(windows) != cfg.T {
		return nil, errStorage(cfg, len(windows))
	}
	for i := range windows {
		if len(windows[i]) != cfg.Cells() {
			return nil, errStorage(cfg, len(windows[i]))
		}
	}
	return &Snapshot{cfg: cfg, windows: windows}, nil
}

// cellMemBytes is the in-memory footprint of one register cell, used by the
// MemBytes estimates that drive the history byte budget and the on-disk
// compression ratio.
var cellMemBytes = int64(unsafe.Sizeof(Cell{}))

// MemBytes estimates the resident size of the snapshot: the flat register
// copy plus slice headers. It is the "in-memory form" against which the
// checkpoint codec's encoded size is compared.
func (s *Snapshot) MemBytes() int64 {
	n := int64(len(s.windows)) * 24 // slice headers
	for _, w := range s.windows {
		n += int64(len(w)) * cellMemBytes
	}
	return n
}

// MemBytes estimates the resident size of the filtered snapshot: the
// retained cells, the sorted cell index, and the interned flow table. The
// checkpoint history's byte gauge charges this when a checkpoint's filter
// result is built and refunds it when the result is dropped.
func (f *Filtered) MemBytes() int64 {
	n := int64(len(f.windows))*24 + int64(len(f.anchorTTS))*8 +
		int64(len(f.coeff)+len(f.ones))*8 + int64(len(f.flows))*16
	for _, w := range f.windows {
		n += int64(len(w)) * cellMemBytes
	}
	for _, refs := range f.index {
		n += int64(len(refs)) * 16
	}
	return n
}

// latestCell scans window 0 for the most recent valid cell and returns its
// window-0 TTS (cycleID<<k | index) — the paper's LatestCell(). ok is false
// if the window holds no valid cell.
func (s *Snapshot) latestCell() (tts uint64, ok bool) {
	k := s.cfg.K
	var best uint64
	for j, c := range s.windows[0] {
		if !c.Valid {
			continue
		}
		t := c.CycleID<<k | uint64(j)
		if !ok || t > best {
			best = t
			ok = true
		}
	}
	return best, ok
}

// cellRef is one surviving cell in a window's query index: its absolute
// span start and the interned id of the flow it holds. Within a window all
// spans share the window's cell period, so sorting by start makes the set
// of cells overlapping any interval a contiguous run.
type cellRef struct {
	start uint64
	flow  int32
}

// Filtered is a snapshot with Algorithm 3 applied: stale cells removed and
// each window's retained anchor recorded. Queries run against it.
type Filtered struct {
	cfg     Config
	windows [][]Cell
	// anchorTTS[i] is the TTS (in window-i coordinates) of the newest cell
	// period retained in window i; window i retains TTS range
	// (anchorTTS[i] - 2^k, anchorTTS[i]].
	anchorTTS []uint64
	// coeff caches cfg.Coefficients(): a Filtered is queried many times
	// (once per checkpoint per interval query), the coefficients never
	// change.
	coeff []float64
	// ones caches the all-ones coefficient vector for the no-recovery
	// ablation, so QueryWithoutCoefficients stops allocating it per call.
	ones  []float64
	empty bool
	// flows interns the distinct flows among surviving cells; index entries
	// refer to flows by position here.
	flows []flow.Key
	// index[i] holds window i's surviving cells sorted by span start.
	// Queries binary-search the overlapping run instead of walking all 2^k
	// cells.
	index [][]cellRef
}

// Filter implements Algorithm 3. It walks the windows from the most recent
// cell of window 0, retaining only cells in the latest cycle (or, for
// indices beyond the latest cell, the immediately preceding cycle), and
// derives each deeper window's anchor as the most recently passed cell:
// TTS' = (TTS - 2^k) >> alpha. It also builds, once, the per-window sorted
// cell index queries binary-search.
func (s *Snapshot) Filter() *Filtered {
	f := &Filtered{
		cfg:       s.cfg,
		windows:   make([][]Cell, s.cfg.T),
		anchorTTS: make([]uint64, s.cfg.T),
		coeff:     s.cfg.Coefficients(),
		ones:      make([]float64, s.cfg.T),
	}
	for i := range f.ones {
		f.ones[i] = 1
	}
	tts, ok := s.latestCell()
	if !ok {
		f.empty = true
		for i := range f.windows {
			f.windows[i] = make([]Cell, len(s.windows[i]))
		}
		f.index = make([][]cellRef, s.cfg.T)
		return f
	}
	cells := uint64(s.cfg.Cells())
	for i := 0; i < s.cfg.T; i++ {
		cid, idx := s.cfg.Split(tts)
		f.anchorTTS[i] = tts
		w := make([]Cell, len(s.windows[i]))
		for j, c := range s.windows[i] {
			if !c.Valid {
				continue
			}
			if j <= idx {
				if c.CycleID == cid {
					w[j] = c
				}
			} else if c.CycleID+1 == cid {
				w[j] = c
			}
		}
		f.windows[i] = w
		if tts < cells {
			// The history does not extend past t=0; deeper windows cannot
			// hold anything newer, and the subtraction below would wrap.
			for d := i + 1; d < s.cfg.T; d++ {
				f.windows[d] = make([]Cell, len(s.windows[d]))
			}
			break
		}
		tts = (tts - cells) >> s.cfg.Alpha
	}
	f.buildIndex()
	return f
}

// buildIndex interns the surviving flows and sorts each window's cells by
// span start.
func (f *Filtered) buildIndex() {
	ids := make(map[flow.Key]int32, 64)
	f.index = make([][]cellRef, f.cfg.T)
	for i := range f.windows {
		var refs []cellRef
		for j, c := range f.windows[i] {
			if !c.Valid {
				continue
			}
			lo, _ := f.cellSpan(i, c.CycleID, j)
			id, ok := ids[c.Flow]
			if !ok {
				id = int32(len(f.flows))
				ids[c.Flow] = id
				f.flows = append(f.flows, c.Flow)
			}
			refs = append(refs, cellRef{start: lo, flow: id})
		}
		// Span starts are unique within a window (each surviving cell has a
		// distinct TTS), so the order is total.
		sort.Slice(refs, func(a, b int) bool { return refs[a].start < refs[b].start })
		f.index[i] = refs
	}
}

// Empty reports whether the filtered snapshot holds no packets at all.
func (f *Filtered) Empty() bool { return f.empty }

// cellSpan returns the absolute dequeue-time range [start, end) covered by
// cell j of window i given its cycle ID.
func (f *Filtered) cellSpan(i int, cycleID uint64, j int) (start, end uint64) {
	tts := cycleID<<f.cfg.K | uint64(j)
	shift := f.cfg.M0 + f.cfg.Alpha*uint(i)
	start = tts << shift
	return start, start + f.cfg.CellPeriod(i)
}

// WindowSpan returns the absolute dequeue-time range (start, end] retained
// by window i after filtering: one full window period ending at the anchor.
func (f *Filtered) WindowSpan(i int) (start, end uint64) {
	if f.empty {
		return 0, 0
	}
	shift := f.cfg.M0 + f.cfg.Alpha*uint(i)
	end = (f.anchorTTS[i] + 1) << shift
	wp := f.cfg.WindowPeriod(i)
	if end < wp {
		return 0, end
	}
	return end - wp, end
}

// RawWindowCounts returns, for each window, the observed (un-recovered)
// per-flow packet counts among surviving cells whose periods overlap
// [start, end). These are the direct register observations; Query applies
// the Algorithm-2 coefficients on top.
func (f *Filtered) RawWindowCounts(start, end uint64) []flow.Counts {
	out := make([]flow.Counts, f.cfg.T)
	for i := range out {
		out[i] = make(flow.Counts)
	}
	if f.empty || end <= start {
		return out
	}
	for i := 0; i < f.cfg.T; i++ {
		for j, c := range f.windows[i] {
			if !c.Valid {
				continue
			}
			lo, hi := f.cellSpan(i, c.CycleID, j)
			if lo < end && hi > start {
				out[i].Add(c.Flow, 1)
			}
		}
	}
	return out
}

// AccumulateInto adds the surviving cells overlapping [start, end) into acc
// as integer per-window counts, binary-searching each window's sorted cell
// index so only overlapping cells are touched — O(log 2^k + hits) per
// window instead of O(2^k). A dense per-flow scratch (interned ids, no map
// writes) gathers each window's counts before they are flushed to acc. It
// returns the number of index cells visited.
func (f *Filtered) AccumulateInto(acc *Accumulator, start, end uint64) int {
	if f.empty || end <= start {
		return 0
	}
	t := f.cfg.T
	visited := 0
	// Dense per-flow scratch rows (local interned ids, no map writes); each
	// touched flow is flushed to acc with a single interning lookup after all
	// windows are gathered.
	cnt := make([]int64, len(f.flows)*t)
	seen := make([]bool, len(f.flows))
	touched := make([]int32, 0, 64)
	for i := 0; i < t; i++ {
		refs := f.index[i]
		cp := f.cfg.CellPeriod(i)
		// A cell [s, s+cp) overlaps [start, end) iff s+cp > start and
		// s < end; with starts ascending both predicates are monotone, so
		// the overlapping cells are exactly refs[first:last].
		first := sort.Search(len(refs), func(j int) bool { return refs[j].start+cp > start })
		last := first + sort.Search(len(refs)-first, func(j int) bool { return refs[first+j].start >= end })
		for _, ref := range refs[first:last] {
			if !seen[ref.flow] {
				seen[ref.flow] = true
				touched = append(touched, ref.flow)
			}
			cnt[int(ref.flow)*t+i]++
		}
		visited += last - first
	}
	for _, id := range touched {
		acc.addRow(f.flows[id], cnt[int(id)*t:int(id)*t+t])
	}
	return visited
}

// AccumulateScanInto is the reference implementation of AccumulateInto: a
// linear walk of every cell of every window, kept selectable for ablation
// and differential testing. Because both paths feed the same integer
// accumulator, their results are bit-identical. It returns the number of
// cells visited (all of them).
func (f *Filtered) AccumulateScanInto(acc *Accumulator, start, end uint64) int {
	if f.empty || end <= start {
		return 0
	}
	visited := 0
	for i := 0; i < f.cfg.T; i++ {
		visited += len(f.windows[i])
		for j, c := range f.windows[i] {
			if !c.Valid {
				continue
			}
			lo, hi := f.cellSpan(i, c.CycleID, j)
			if lo < end && hi > start {
				acc.add(c.Flow, i, 1)
			}
		}
	}
	return visited
}

// Query estimates the per-flow packet counts dequeued during [start, end):
// it gathers surviving cells per window and divides each window's counts by
// coefficient[i] (Algorithm 2) to recover the pre-compression numbers, then
// aggregates across windows. This answers both direct-culprit queries
// (victim residence interval) and indirect-culprit queries (regime
// interval); the two differ only in the interval supplied.
func (f *Filtered) Query(start, end uint64) flow.Counts {
	acc := NewAccumulator(f.cfg.T, f.coeff)
	f.AccumulateInto(acc, start, end)
	return acc.Counts()
}

// QueryScan is Query on the reference scan path (every cell of every
// window). Results are bit-identical to Query; only the work differs.
func (f *Filtered) QueryScan(start, end uint64) flow.Counts {
	acc := NewAccumulator(f.cfg.T, f.coeff)
	f.AccumulateScanInto(acc, start, end)
	return acc.Counts()
}

// QueryInto accumulates the [start, end) estimate into dst instead of
// returning a fresh result map. The arithmetic is identical to Query, so
// results are bit-equal.
func (f *Filtered) QueryInto(dst flow.Counts, start, end uint64) {
	acc := NewAccumulator(f.cfg.T, f.coeff)
	f.AccumulateInto(acc, start, end)
	acc.AddTo(dst)
}

// QueryWithoutCoefficients is the ablation variant that sums raw window
// observations without Algorithm-2 recovery. Deep-window compression then
// shows up directly as under-estimation.
func (f *Filtered) QueryWithoutCoefficients(start, end uint64) flow.Counts {
	acc := NewAccumulator(f.cfg.T, f.ones)
	f.AccumulateInto(acc, start, end)
	return acc.Counts()
}

// QueryWindow estimates per-flow counts using only window i — the paper's
// Figure-12 per-window accuracy experiment queries a single window's full
// retained period this way.
func (f *Filtered) QueryWindow(i int, start, end uint64) flow.Counts {
	out := make(flow.Counts)
	if f.empty || end <= start || i < 0 || i >= f.cfg.T {
		return out
	}
	coeff := f.coeff[i]
	for j, c := range f.windows[i] {
		if !c.Valid {
			continue
		}
		lo, hi := f.cellSpan(i, c.CycleID, j)
		if lo < end && hi > start {
			out.Add(c.Flow, 1/coeff)
		}
	}
	return out
}

// SurvivingCells returns the number of valid cells per window after
// filtering — a direct observable of the compression process used by tests
// and the ablation benchmarks.
func (f *Filtered) SurvivingCells() []int {
	out := make([]int, f.cfg.T)
	for i := range f.windows {
		n := 0
		for _, c := range f.windows[i] {
			if c.Valid {
				n++
			}
		}
		out[i] = n
	}
	return out
}
