package timewindow

import (
	"math"
	"math/rand/v2"
	"testing"

	"printqueue/internal/flow"
)

func TestFilterEmpty(t *testing.T) {
	w, _ := New(smallConfig(), nil)
	f := w.Snapshot().Filter()
	if !f.Empty() {
		t.Fatal("empty window set not reported empty")
	}
	if c := f.Query(0, 100); len(c) != 0 {
		t.Fatalf("query on empty snapshot returned %v", c)
	}
}

// TestFilterStaleCells verifies Algorithm 3: cells older than one window
// period relative to the latest cell are removed.
func TestFilterStaleCells(t *testing.T) {
	cfg := smallConfig() // k=2: 4 cells, cell period 1 ns
	w, _ := New(cfg, nil)
	// Fill cells at TTS 0..3 (cycle 0), then write TTS 9 (cycle 2, idx 1).
	for i := 0; i < 4; i++ {
		w.Insert(fkey(uint32(i)), uint64(i))
	}
	w.Insert(fkey(99), 9)
	f := w.Snapshot().Filter()
	// Latest TTS = 9 (cycle 2, idx 1). Retained: idx <= 1 with cycle 2,
	// idx > 1 with cycle 1. The cycle-0 cells all die except... none:
	// cell 0 holds cycle 0 (!= 2) -> dead; cell 1 holds flow 99 (cycle 2)
	// -> live; cells 2,3 hold cycle 0 (!= 1) -> dead.
	counts := f.Query(0, 100)
	if len(counts) != 1 || counts[fkey(99)] != 1 {
		t.Fatalf("filtered counts = %v, want only flow 99", counts)
	}
}

func TestFilterRetainsOneWindowPeriod(t *testing.T) {
	cfg := smallConfig()
	w, _ := New(cfg, nil)
	// TTS 5, 6, 7 (cycle 1 idx 1,2,3) and TTS 8 (cycle 2 idx 0):
	// all within one window period of the latest.
	for i, ts := range []uint64{5, 6, 7, 8} {
		w.Insert(fkey(uint32(i)), ts)
	}
	f := w.Snapshot().Filter()
	counts := f.Query(0, 100)
	if len(counts) != 4 {
		t.Fatalf("retained %d flows, want 4: %v", len(counts), counts)
	}
}

// TestFilterAnchorChain checks the deeper-window anchor arithmetic
// TTS' = (TTS - 2^k) >> alpha and the resulting disjoint window spans.
func TestFilterAnchorChain(t *testing.T) {
	cfg := Config{M0: 2, K: 3, Alpha: 1, T: 3, MinPktTxDelayNs: 5}
	w, _ := New(cfg, nil)
	w.Insert(fkey(1), 400) // TTS 100: anchors the chain
	f := w.Snapshot().Filter()
	// anchor[0] = 100; anchor[1] = (100-8)>>1 = 46; anchor[2] = (46-8)>>1 = 19.
	want := []uint64{100, 46, 19}
	for i, a := range want {
		if f.anchorTTS[i] != a {
			t.Errorf("anchor[%d] = %d, want %d", i, f.anchorTTS[i], a)
		}
	}
	// Window spans must be adjacent and non-overlapping: span i's start
	// equals span i+1's end (up to the alpha rounding slop of one deep
	// cell).
	for i := 0; i < cfg.T-1; i++ {
		lo, _ := f.WindowSpan(i)
		_, hiNext := f.WindowSpan(i + 1)
		if hiNext > lo+cfg.CellPeriod(i+1) {
			t.Errorf("window %d span end %d overlaps window %d start %d", i+1, hiNext, i, lo)
		}
	}
}

func TestQueryIntervalSelectivity(t *testing.T) {
	cfg := smallConfig()
	w, _ := New(cfg, nil)
	w.Insert(fkey(1), 4)
	w.Insert(fkey(2), 7)
	f := w.Snapshot().Filter()
	// Query covering only TTS 4.
	counts := f.Query(4, 5)
	if counts[fkey(1)] != 1 || counts[fkey(2)] != 0 {
		t.Fatalf("selective query = %v", counts)
	}
	// Empty and inverted intervals return nothing.
	if c := f.Query(5, 5); len(c) != 0 {
		t.Fatalf("empty interval returned %v", c)
	}
	if c := f.Query(9, 5); len(c) != 0 {
		t.Fatalf("inverted interval returned %v", c)
	}
}

func TestQueryWindowBounds(t *testing.T) {
	w, _ := New(smallConfig(), nil)
	w.Insert(fkey(1), 4)
	f := w.Snapshot().Filter()
	if c := f.QueryWindow(-1, 0, 100); len(c) != 0 {
		t.Fatalf("negative window returned %v", c)
	}
	if c := f.QueryWindow(99, 0, 100); len(c) != 0 {
		t.Fatalf("out-of-range window returned %v", c)
	}
	if c := f.QueryWindow(0, 0, 100); c[fkey(1)] != 1 {
		t.Fatalf("window 0 query = %v", c)
	}
}

// TestProportionalRecovery drives a continuous line-rate stream through a
// realistic window set, then checks that the coefficient-scaled aggregate
// estimate for a deep-window interval is close to the true packet count —
// the Theorem 2/3 recovery in action.
func TestProportionalRecovery(t *testing.T) {
	cfg := Config{M0: 3, K: 8, Alpha: 1, T: 4, MinPktTxDelayNs: 10}
	w, _ := New(cfg, nil)
	rng := rand.New(rand.NewPCG(42, 0))
	// Packets every ~10 ns (z = 8/10 = 0.8), 200k packets, 16 flows.
	var ts uint64
	type rec struct {
		f  flow.Key
		ts uint64
	}
	var log []rec
	for i := 0; i < 200000; i++ {
		ts += uint64(5 + rng.IntN(11)) // mean 10 ns
		f := fkey(uint32(rng.IntN(16)))
		w.Insert(f, ts)
		log = append(log, rec{f, ts})
	}
	f := w.Snapshot().Filter()
	// Pick an interval that lands in window 2 (cell period 32 ns, window
	// period 8192 ns): 2-3 window-0 periods back from the end.
	end := ts - 2*cfg.WindowPeriod(0)
	start := end - 4000
	est := f.Query(start, end)
	var truth float64
	for _, r := range log {
		if r.ts >= start && r.ts < end {
			truth++
		}
	}
	got := est.Total()
	if truth == 0 {
		t.Fatal("test bug: empty truth interval")
	}
	if math.Abs(got-truth)/truth > 0.35 {
		t.Fatalf("aggregate estimate %v vs truth %v: error > 35%%", got, truth)
	}
	// The ablation without coefficients must under-estimate substantially.
	raw := f.QueryWithoutCoefficients(start, end).Total()
	if raw >= got {
		t.Fatalf("raw %v >= recovered %v; coefficients had no effect", raw, got)
	}
	if raw > 0.8*truth {
		t.Fatalf("raw estimate %v too close to truth %v; interval not compressed?", raw, truth)
	}
}

// TestSurvivingCellsDecreases checks compression: deeper windows hold fewer
// surviving packets per covered nanosecond.
func TestSurvivingCellsDecreases(t *testing.T) {
	cfg := Config{M0: 3, K: 8, Alpha: 2, T: 3, MinPktTxDelayNs: 10}
	w, _ := New(cfg, nil)
	rng := rand.New(rand.NewPCG(7, 0))
	var ts uint64
	for i := 0; i < 100000; i++ {
		ts += uint64(5 + rng.IntN(11))
		w.Insert(fkey(uint32(rng.IntN(8))), ts)
	}
	f := w.Snapshot().Filter()
	surv := f.SurvivingCells()
	if surv[0] == 0 {
		t.Fatal("window 0 empty after 100k inserts")
	}
	// Packets per nanosecond of coverage must drop with depth.
	density := func(i int) float64 {
		lo, hi := f.WindowSpan(i)
		if hi <= lo {
			return 0
		}
		return float64(surv[i]) / float64(hi-lo)
	}
	if !(density(0) > density(1) && density(1) > density(2)) {
		t.Fatalf("densities not decreasing: %v %v %v", density(0), density(1), density(2))
	}
}

// TestFaultInjectionStaleRegisters fills the backing registers with random
// garbage (a reused hardware register set, or corrupted state) before the
// stream starts: the cycle-ID discipline in the passing rule and Algorithm
// 3 must fence it all off, leaving recent-interval queries exact.
func TestFaultInjectionStaleRegisters(t *testing.T) {
	cfg := Config{M0: 3, K: 8, Alpha: 1, T: 3, MinPktTxDelayNs: 10}
	rng := rand.New(rand.NewPCG(21, 22))
	storage := make([][]Cell, cfg.T)
	for i := range storage {
		storage[i] = make([]Cell, cfg.Cells())
		for j := range storage[i] {
			storage[i][j] = Cell{
				Flow:    fkey(uint32(1000 + rng.IntN(50))),
				CycleID: rng.Uint64() % 1000,
				Valid:   rng.IntN(4) != 0,
			}
		}
	}
	w, err := New(cfg, storage)
	if err != nil {
		t.Fatal(err)
	}
	// A fresh stream far in the future of any garbage cycle IDs, sized to
	// fit inside the set period (14.3 us here) so nothing legitimately
	// ages out.
	base := uint64(1) << 40
	var ts uint64 = base
	truth := make(map[flow.Key]int)
	const n = 1000 // 10 us of stream
	for i := 0; i < n; i++ {
		ts += 10
		f := fkey(uint32(i % 8))
		w.Insert(f, ts)
		truth[f]++
	}
	counts := w.Snapshot().Filter().Query(base, ts+1)
	for f, cnt := range counts {
		if _, ours := truth[f]; !ours {
			t.Fatalf("stale flow %v leaked into the query with %v packets", f, cnt)
		}
	}
	if tot := counts.Total(); tot < 0.75*n || tot > 1.25*n {
		t.Fatalf("recovered %v of %d packets with garbage registers", tot, n)
	}
}
