// Package timewindow implements PrintQueue's hierarchical, probabilistic
// time-window structure (paper §4): T ring-buffer windows of 2^k cells whose
// cell periods grow by a factor 2^α per window, the per-packet mapping and
// passing rules (Algorithm 1), the coefficient-based packet-count recovery
// (Algorithm 2, Theorems 1–3), and the stale-cell filter used at query time
// (Algorithm 3).
package timewindow

import (
	"fmt"
	"math"
)

// Config parameterizes a set of time windows.
type Config struct {
	// M0 is log2 of window 0's cell period in ns. The paper sets it to
	// floor(log2(min_pkt_tx_delay)) so window 0 never sees a cell-level
	// collision within one cycle.
	M0 uint
	// K is log2 of the number of cells per window (paper default 12, i.e.
	// 4096 cells).
	K uint
	// Alpha is the compression factor: each successive window's cell period
	// is 2^Alpha times larger.
	Alpha uint
	// T is the number of windows.
	T int
	// MinPktTxDelayNs is d: the transmission delay, in ns, of the smallest
	// packet of the target workload at line rate. It seeds z = 2^M0/d for
	// the coefficient recursion (Theorem 3).
	MinPktTxDelayNs float64
}

// M0ForDelay returns floor(log2(d)) for a min-packet transmission delay of d
// nanoseconds — the paper's rule for choosing the first cell period.
func M0ForDelay(d float64) uint {
	if d < 2 {
		return 0
	}
	return uint(math.Floor(math.Log2(d)))
}

// MinPktTxDelay returns the transmission delay in ns of a packet of the
// given size at the given line rate.
func MinPktTxDelay(bytes int, linkBps uint64) float64 {
	return float64(bytes) * 8 * 1e9 / float64(linkBps)
}

// Validate checks the configuration for internal consistency.
func (c Config) Validate() error {
	if c.T < 1 {
		return fmt.Errorf("timewindow: T must be >= 1, got %d", c.T)
	}
	if c.K == 0 || c.K > 24 {
		return fmt.Errorf("timewindow: k must be in [1,24], got %d", c.K)
	}
	if c.Alpha == 0 || c.Alpha > 8 {
		return fmt.Errorf("timewindow: alpha must be in [1,8], got %d", c.Alpha)
	}
	if c.M0+c.Alpha*uint(c.T-1)+c.K >= 63 {
		return fmt.Errorf("timewindow: m0+alpha*(T-1)+k = %d overflows the timestamp", c.M0+c.Alpha*uint(c.T-1)+c.K)
	}
	if c.MinPktTxDelayNs <= 0 {
		return fmt.Errorf("timewindow: MinPktTxDelayNs must be > 0")
	}
	return nil
}

// Cells returns the number of cells per window, 2^k.
func (c Config) Cells() int { return 1 << c.K }

// CellPeriod returns the cell period of window i in ns: 2^(m0 + alpha*i).
func (c Config) CellPeriod(i int) uint64 { return 1 << (c.M0 + c.Alpha*uint(i)) }

// WindowPeriod returns the window period of window i in ns:
// 2^(m0 + alpha*i + k).
func (c Config) WindowPeriod(i int) uint64 { return 1 << (c.M0 + c.Alpha*uint(i) + c.K) }

// SetPeriod returns the contiguous timespan covered by the full set of T
// windows: sum_i 2^(m0+alpha*i+k) = (2^(alpha*T)-1)/(2^alpha-1) * 2^(m0+k).
func (c Config) SetPeriod() uint64 {
	var total uint64
	for i := 0; i < c.T; i++ {
		total += c.WindowPeriod(i)
	}
	return total
}

// Z0 returns z for the first window: 2^m0 / d, the probability that a cell
// stores a new packet each window period under line-rate forwarding
// (Theorem 3). The value is clamped just below 1 — z = 1 would make the
// recovery ratios degenerate, and it cannot be exceeded because the paper
// picks m0 so that 2^m0 <= d.
func (c Config) Z0() float64 {
	z := math.Exp2(float64(c.M0)) / c.MinPktTxDelayNs
	if z >= 1 {
		z = 1 - 1e-9
	}
	return z
}

// Coefficients implements Algorithm 2. coefficient[i] is the expected ratio
// of a flow's observed packet count in window i to its true packet count in
// window 0's fidelity; dividing an observed count by coefficient[i] recovers
// the estimate.
func (c Config) Coefficients() []float64 {
	coeff := make([]float64, c.T)
	coeff[0] = 1
	z := c.Z0()
	acc := 1.0
	twoAlpha := math.Exp2(float64(c.Alpha))
	for i := 1; i < c.T; i++ {
		p := 1 - z*z
		pPowTwoAlpha := math.Pow(p, twoAlpha)
		acc *= z * (1 - pPowTwoAlpha) / (1 - p) / twoAlpha
		coeff[i] = acc
		z = 1 - pPowTwoAlpha
	}
	return coeff
}

// TTS returns the trimmed timestamp for window 0: the dequeue timestamp
// shifted right by m0 (Figure 5).
func (c Config) TTS(deqTS uint64) uint64 { return deqTS >> c.M0 }

// Split breaks a window-level TTS into its cycle ID and cell index: the k
// least-significant bits index the cell, the rest form the cycle ID.
func (c Config) Split(tts uint64) (cycleID uint64, index int) {
	return tts >> c.K, int(tts & uint64(c.Cells()-1))
}
