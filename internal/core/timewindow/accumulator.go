package timewindow

import (
	"printqueue/internal/flow"
)

// Accumulator collects per-flow, per-window integer cell counts across any
// number of filtered snapshots sharing one Config, deferring the
// Algorithm-2 coefficient division to Counts. Keeping the intermediate
// state integral makes the aggregation exact and order-independent: a query
// split across checkpoints — or across goroutines, with partial
// accumulators joined by Merge — produces bit-identical estimates no matter
// how the work was partitioned, because integer addition is associative
// where float addition is not. The per-flow estimate is always the same
// left-to-right fold over window indices of count/coefficient.
//
// An Accumulator is not safe for concurrent use; parallel queries give each
// shard its own and Merge the results.
type Accumulator struct {
	t     int
	coeff []float64
	ids   map[flow.Key]int32
	flows []flow.Key
	// counts is row-major per flow: counts[id*t+i] is the number of
	// surviving cells of window i (across all accumulated snapshots)
	// holding the flow and overlapping the query interval.
	counts []int64
}

// NewAccumulator builds an empty accumulator for t windows with the given
// recovery coefficients (len >= t). Pass Config.Coefficients() for the
// paper's estimate, or all-ones for the ablation without recovery.
func NewAccumulator(t int, coeff []float64) *Accumulator {
	return &Accumulator{t: t, coeff: coeff, ids: make(map[flow.Key]int32)}
}

// add records n overlapping cells of window i for flow k.
func (a *Accumulator) add(k flow.Key, i int, n int64) {
	a.counts[int(a.intern(k))*a.t+i] += n
}

// intern returns the flow's id, appending a zeroed count row on first
// sight. The row is grown in place (fresh capacity from make is already
// zero, and rows are never truncated) to avoid a temporary slice per flow.
func (a *Accumulator) intern(k flow.Key) int32 {
	id, ok := a.ids[k]
	if !ok {
		id = int32(len(a.flows))
		a.ids[k] = id
		a.flows = append(a.flows, k)
		n := len(a.counts) + a.t
		if n <= cap(a.counts) {
			a.counts = a.counts[:n]
		} else {
			grown := make([]int64, n, 2*n+64)
			copy(grown, a.counts)
			a.counts = grown
		}
	}
	return id
}

// addRow records a full per-window count row for flow k with a single
// interning lookup. len(row) must be a.t.
func (a *Accumulator) addRow(k flow.Key, row []int64) {
	id := a.intern(k)
	dst := a.counts[int(id)*a.t : int(id)*a.t+a.t]
	for i, n := range row {
		dst[i] += n
	}
}

// Flows returns the number of distinct flows accumulated.
func (a *Accumulator) Flows() int { return len(a.flows) }

// Merge folds b's integer counts into a. Because the counts are exact,
// merging partial accumulators in any order yields the same totals as
// accumulating serially.
func (a *Accumulator) Merge(b *Accumulator) {
	if b == nil {
		return
	}
	for id, k := range b.flows {
		row := b.counts[id*b.t : (id+1)*b.t]
		for i, n := range row {
			if n != 0 {
				a.add(k, i, n)
			}
		}
	}
}

// AddTo applies the coefficients and adds the per-flow estimates into dst.
// Each flow's estimate is the ascending-window fold of count/coefficient —
// the same association Query uses — so identical counts always produce
// bit-identical floats.
func (a *Accumulator) AddTo(dst flow.Counts) {
	for id, k := range a.flows {
		row := a.counts[id*a.t : (id+1)*a.t]
		var est float64
		for i, n := range row {
			if n != 0 {
				est += float64(n) / a.coeff[i]
			}
		}
		if est != 0 {
			dst.Add(k, est)
		}
	}
}

// Counts materializes the accumulated estimate as a fresh Counts map.
func (a *Accumulator) Counts() flow.Counts {
	out := make(flow.Counts, len(a.flows))
	a.AddTo(out)
	return out
}
