package timewindow

import (
	"math/rand/v2"
	"reflect"
	"testing"

	"printqueue/internal/flow"
)

// TestIndexedQueryMatchesScan is the core differential test of the cell
// index: for randomized snapshots and intervals, the indexed path must
// return bit-identical results to the reference full scan.
func TestIndexedQueryMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 11))
	for trial := 0; trial < 60; trial++ {
		cfg := Config{
			M0:              uint(rng.IntN(4)),
			K:               uint(2 + rng.IntN(5)),
			Alpha:           uint(1 + rng.IntN(3)),
			T:               1 + rng.IntN(4),
			MinPktTxDelayNs: 1.25,
		}
		w, err := New(cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		n := rng.IntN(3000)
		var ts uint64
		for i := 0; i < n; i++ {
			ts += uint64(1 + rng.IntN(200))
			w.Insert(fkey(uint32(rng.IntN(40))), ts)
		}
		f := w.Snapshot().Filter()
		horizon := ts + cfg.SetPeriod()
		for q := 0; q < 40; q++ {
			var lo, hi uint64
			switch q {
			case 0: // everything
				lo, hi = 0, horizon+1
			case 1: // empty interval
				lo, hi = horizon/2, horizon/2
			case 2: // inverted interval
				lo, hi = horizon/2+5, horizon/2
			case 3: // single nanosecond at t=0
				lo, hi = 0, 1
			case 4: // single-cell-period window at the end of the trace
				lo, hi = ts, ts+cfg.CellPeriod(0)
			default:
				lo = rng.Uint64N(horizon + 1)
				hi = lo + rng.Uint64N(horizon/4+2)
			}
			want := f.QueryScan(lo, hi)
			got := f.Query(lo, hi)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d cfg %+v interval [%d,%d): indexed %v != scan %v",
					trial, cfg, lo, hi, got, want)
			}
		}
	}
}

// TestIndexedQueryEmptyAndSingleCell pins the degenerate shapes: an empty
// snapshot and a snapshot holding exactly one surviving cell.
func TestIndexedQueryEmptyAndSingleCell(t *testing.T) {
	cfg := smallConfig()
	w, _ := New(cfg, nil)
	f := w.Snapshot().Filter()
	if got := f.Query(0, 1000); len(got) != 0 {
		t.Fatalf("indexed query on empty snapshot returned %v", got)
	}
	acc := NewAccumulator(cfg.T, cfg.Coefficients())
	if cells := f.AccumulateInto(acc, 0, 1000); cells != 0 {
		t.Fatalf("empty snapshot visited %d cells", cells)
	}

	w2, _ := New(cfg, nil)
	w2.Insert(fkey(1), 5)
	f2 := w2.Snapshot().Filter()
	for _, iv := range [][2]uint64{{0, 1000}, {5, 6}, {0, 5}, {6, 1000}, {0, 1}} {
		want := f2.QueryScan(iv[0], iv[1])
		got := f2.Query(iv[0], iv[1])
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("single-cell interval %v: indexed %v != scan %v", iv, got, want)
		}
	}
}

// TestIndexedQueryWrapAtZero exercises the Filter early-break branch where
// the history does not reach past t=0 (tts < 2^k), plus queries hugging
// the origin.
func TestIndexedQueryWrapAtZero(t *testing.T) {
	cfg := smallConfig()
	w, _ := New(cfg, nil)
	// All inserts within the first window cycle: deeper windows stay empty
	// and the anchor chain stops at t=0.
	for i := uint64(0); i < 4; i++ {
		w.Insert(fkey(uint32(i)), i)
	}
	f := w.Snapshot().Filter()
	for _, iv := range [][2]uint64{{0, 1}, {0, 4}, {1, 3}, {3, 4}, {0, 1000}, {4, 1000}} {
		want := f.QueryScan(iv[0], iv[1])
		got := f.Query(iv[0], iv[1])
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("wrap interval %v: indexed %v != scan %v", iv, got, want)
		}
	}
}

// TestAccumulatorMergeExact verifies that splitting an accumulation into
// shards and merging gives bit-identical results to serial accumulation,
// regardless of split point — the property the parallel query fan-out
// relies on.
func TestAccumulatorMergeExact(t *testing.T) {
	cfg := Config{M0: 1, K: 4, Alpha: 2, T: 3, MinPktTxDelayNs: 2.5}
	rng := rand.New(rand.NewPCG(3, 9))
	// Build several independent snapshots, as checkpoints would.
	var filtered []*Filtered
	var ts uint64
	for s := 0; s < 6; s++ {
		w, _ := New(cfg, nil)
		for i := 0; i < 400; i++ {
			ts += uint64(1 + rng.IntN(20))
			w.Insert(fkey(uint32(rng.IntN(12))), ts)
		}
		filtered = append(filtered, w.Snapshot().Filter())
	}
	lo, hi := uint64(0), ts+1
	coeff := cfg.Coefficients()

	serial := NewAccumulator(cfg.T, coeff)
	for _, f := range filtered {
		f.AccumulateInto(serial, lo, hi)
	}
	want := serial.Counts()

	for split := 1; split < len(filtered); split++ {
		a := NewAccumulator(cfg.T, coeff)
		b := NewAccumulator(cfg.T, coeff)
		for _, f := range filtered[:split] {
			f.AccumulateInto(a, lo, hi)
		}
		for _, f := range filtered[split:] {
			f.AccumulateInto(b, lo, hi)
		}
		a.Merge(b)
		if got := a.Counts(); !reflect.DeepEqual(got, want) {
			t.Fatalf("split %d: merged %v != serial %v", split, got, want)
		}
	}
}

// TestIndexedVisitsOnlyHits checks the index actually prunes work: a
// narrow query over a long trace must visit far fewer cells than the scan.
func TestIndexedVisitsOnlyHits(t *testing.T) {
	cfg := Config{M0: 0, K: 10, Alpha: 2, T: 4, MinPktTxDelayNs: 1.25}
	w, _ := New(cfg, nil)
	var ts uint64
	for i := 0; i < 50000; i++ {
		ts += 2
		w.Insert(fkey(uint32(i%64)), ts)
	}
	f := w.Snapshot().Filter()
	lo, hi := ts-16, ts // a handful of window-0 cells
	idxAcc := NewAccumulator(cfg.T, cfg.Coefficients())
	scanAcc := NewAccumulator(cfg.T, cfg.Coefficients())
	idxCells := f.AccumulateInto(idxAcc, lo, hi)
	scanCells := f.AccumulateScanInto(scanAcc, lo, hi)
	if scanCells != cfg.T*cfg.Cells() {
		t.Fatalf("scan visited %d cells, want %d", scanCells, cfg.T*cfg.Cells())
	}
	if idxCells == 0 || idxCells*20 > scanCells {
		t.Fatalf("index visited %d cells vs scan %d; expected >20x reduction", idxCells, scanCells)
	}
	if !reflect.DeepEqual(idxAcc.Counts(), scanAcc.Counts()) {
		t.Fatal("narrow-interval indexed result != scan result")
	}
}

// TestQueryWithoutCoefficientsCached checks the ablation variant matches
// the raw (coefficient-free) window sums and no longer depends on a
// per-call ones slice.
func TestQueryWithoutCoefficientsCached(t *testing.T) {
	cfg := smallConfig()
	w, _ := New(cfg, nil)
	var ts uint64
	for i := 0; i < 200; i++ {
		ts += 2
		w.Insert(fkey(uint32(i%5)), ts)
	}
	f := w.Snapshot().Filter()
	got := f.QueryWithoutCoefficients(0, ts+1)
	// Oracle: sum the per-window raw counts directly.
	want := make(flow.Counts)
	for _, wc := range f.RawWindowCounts(0, ts+1) {
		for k, n := range wc {
			want[k] += n
		}
	}
	if len(got) != len(want) {
		t.Fatalf("flows: got %d want %d", len(got), len(want))
	}
	for k, n := range want {
		if got[k] != n {
			t.Fatalf("flow %v: got %v want %v", k, got[k], n)
		}
	}
}
