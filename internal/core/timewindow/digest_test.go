package timewindow

import (
	"testing"

	"printqueue/internal/flow"
	"printqueue/internal/metrics"
)

func TestDigestTableBasics(t *testing.T) {
	d := NewDigestTable(32, 7)
	a, b := fkey(1), fkey(2)
	d.Learn(a)
	d.Learn(a) // idempotent
	d.Learn(b)
	if got := d.Resolve(d.Digest(a)); len(got) != 1 || got[0] != a {
		t.Fatalf("Resolve(a) = %v", got)
	}
	if d.Resolve(0xDEADBEEF) != nil && len(d.Resolve(0xDEADBEEF)) > 0 {
		// 1-in-4-billion chance of a real digest landing here; treat a
		// hit as suspicious only if it maps to neither flow.
		for _, k := range d.Resolve(0xDEADBEEF) {
			if k != a && k != b {
				t.Fatal("resolved an unlearned flow")
			}
		}
	}
	if NewDigestTable(0, 1).bits != 32 || NewDigestTable(40, 1).bits != 32 {
		t.Fatal("width clamping wrong")
	}
}

// TestDigest32BitLossless: at the hardware width, thousands of flows
// produce (almost surely) no collisions and the digest pipeline is an
// identity on query results — supporting the paper's observation that its
// errors do not come from hash collisions.
func TestDigest32BitLossless(t *testing.T) {
	d := NewDigestTable(32, 3)
	counts := make(flow.Counts)
	for i := uint32(0); i < 5000; i++ {
		counts[fkey(i)] = float64(1 + i%17)
	}
	out := d.ApplyDigests(counts)
	if d.Collisions() != 0 {
		t.Skipf("improbable 32-bit collision among 5000 flows; seed-dependent")
	}
	p, r := metrics.PrecisionRecall(out, counts)
	if p != 1 || r != 1 {
		t.Fatalf("32-bit digests not lossless: %v/%v", p, r)
	}
}

// TestDigestNarrowWidthCollides: with 10-bit digests and 5000 flows,
// collisions are pervasive and accuracy visibly degrades.
func TestDigestNarrowWidthCollides(t *testing.T) {
	d := NewDigestTable(10, 3)
	counts := make(flow.Counts)
	for i := uint32(0); i < 5000; i++ {
		counts[fkey(i)] = float64(1 + i%17)
	}
	out := d.ApplyDigests(counts)
	if d.Collisions() == 0 {
		t.Fatal("5000 flows in 1024 digests produced no collisions?")
	}
	p, _ := metrics.PrecisionRecall(out, counts)
	if p > 0.95 {
		t.Fatalf("narrow digests kept precision %v; expected visible loss", p)
	}
	// Totals are conserved: digesting redistributes, never invents.
	if got, want := out.Total(), counts.Total(); got < want*0.999 || got > want*1.001 {
		t.Fatalf("digesting changed the total: %v vs %v", got, want)
	}
}
