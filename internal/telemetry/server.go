package telemetry

import (
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"sync"
	"sync/atomic"
)

// Server is the ops HTTP endpoint: the out-of-band window into a running
// PrintQueue deployment (the in-band window being the data-plane structures
// themselves). It serves:
//
//	/metrics        Prometheus text exposition of the registry; an
//	                OpenMetrics rendition with trace exemplars when the
//	                scrape Accepts application/openmetrics-text
//	/healthz        liveness probe ("ok"), kept for compatibility
//	/healthz/live   liveness probe: the process serves HTTP
//	/healthz/ready  readiness probe: 503 with the degradation reasons
//	                while the instrumented system is not fit for traffic
//	/debug/vars     expvar JSON (includes the registry snapshot)
//	/debug/pprof/*  Go runtime profiles
//
// plus any JSON introspection endpoints installed with HandleJSON.
type Server struct {
	reg *Registry
	ln  net.Listener
	srv *http.Server
	mux *http.ServeMux

	// ready reports why the instrumented system is NOT ready (empty or nil
	// = ready). Installed with SetReady; nil func = always ready, so a
	// bare telemetry server stays backward compatible.
	ready atomic.Pointer[func() []string]

	closeOnce sync.Once
	closeErr  error
}

// NewServer listens on addr (use "127.0.0.1:0" to pick a free port) and
// serves the registry until Close. The registry is also published to expvar
// under "printqueue" so /debug/vars carries the same numbers.
func NewServer(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	reg.PublishExpvar("printqueue")
	mux := http.NewServeMux()
	s := &Server{reg: reg, ln: ln, mux: mux}
	mux.HandleFunc("/metrics", s.serveMetrics)
	mux.HandleFunc("/healthz", serveHealthz)
	mux.HandleFunc("/healthz/live", serveHealthz)
	mux.HandleFunc("/healthz/ready", s.serveReady)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.srv = &http.Server{Handler: mux}
	go s.srv.Serve(ln)
	return s, nil
}

// HandleJSON installs an introspection endpoint: every GET of path returns
// fn() marshalled as JSON. fn must be safe to call concurrently with the
// instrumented system running. http.ServeMux is safe for registration
// while serving, so handlers may be added after NewServer returns.
func (s *Server) HandleJSON(path string, fn func() any) {
	s.mux.HandleFunc(path, func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(fn()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}

// Handle installs an arbitrary handler at path, for endpoints that need
// full control over the response (status codes, content types).
func (s *Server) Handle(path string, h http.Handler) {
	s.mux.Handle(path, h)
}

// SetReady installs the readiness check: fn returns the list of reasons the
// system is degraded (empty = ready). fn must be safe to call concurrently.
func (s *Server) SetReady(fn func() []string) {
	s.ready.Store(&fn)
}

// Addr returns the listening address (useful with port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and open connections. Idempotent.
func (s *Server) Close() error {
	s.closeOnce.Do(func() { s.closeErr = s.srv.Close() })
	return s.closeErr
}

func (s *Server) serveMetrics(w http.ResponseWriter, req *http.Request) {
	// Content negotiation: only a scrape that explicitly accepts
	// application/openmetrics-text gets the exemplar-bearing rendition;
	// everything else sees the byte-stable 0.0.4 text format.
	if strings.Contains(req.Header.Get("Accept"), "application/openmetrics-text") {
		w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
		s.reg.WriteOpenMetrics(w)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WritePrometheus(w)
}

func serveHealthz(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write([]byte("ok\n"))
}

// serveReady answers the readiness probe: 200 "ok" when the installed
// check reports no degradation, 503 with one reason per line otherwise.
func (s *Server) serveReady(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	var reasons []string
	if fn := s.ready.Load(); fn != nil && *fn != nil {
		reasons = (*fn)()
	}
	if len(reasons) == 0 {
		w.Write([]byte("ok\n"))
		return
	}
	w.WriteHeader(http.StatusServiceUnavailable)
	for _, r := range reasons {
		w.Write([]byte(r + "\n"))
	}
}
