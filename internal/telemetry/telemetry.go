// Package telemetry is the self-observability layer of the PrintQueue
// control plane: a lock-free metric registry (atomic counters, gauges, and
// fixed-bucket latency histograms) plus an ops HTTP server exposing the
// registry as Prometheus text exposition, expvar JSON, and pprof.
//
// The record path — Counter.Add, Gauge.Set/Max, Histogram.Observe — is a
// handful of atomic operations with zero allocation, so the sharded
// ingestion pipeline and the snapshot goroutine can be instrumented without
// perturbing the hot paths they measure. Metric identity (name, help,
// labels) is fixed at registration; registration is get-or-create, so a
// component restarted against the same registry (e.g. a second Pipeline on
// one System) reuses its series instead of colliding.
package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name="value" pair attached to a metric series.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// LatencyBuckets is the default histogram bucketing for nanosecond
// latencies: decades from 1µs to 10s. Fine enough to separate an in-cache
// register copy from a stalled snapshotter, coarse enough to stay a few
// atomics wide.
var LatencyBuckets = []uint64{
	1_000,          // 1µs
	10_000,         // 10µs
	100_000,        // 100µs
	1_000_000,      // 1ms
	10_000_000,     // 10ms
	100_000_000,    // 100ms
	1_000_000_000,  // 1s
	10_000_000_000, // 10s
}

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set stores the current value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the gauge by n (negative to decrement).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Max raises the gauge to n if n is larger — a lock-free high-watermark.
func (g *Gauge) Max(n int64) {
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Histogram is a fixed-bucket distribution. Bucket i counts observations v
// with v <= bounds[i] (and > bounds[i-1]); one extra overflow bucket counts
// everything above the last bound (Prometheus le="+Inf"). Observe is
// wait-free and allocation-free.
//
// Each bucket additionally keeps one exemplar: the trace id and value of
// the last traced observation that landed there, linking the latency
// distribution back to a concrete trace in the trace ring. Exemplars are
// exposed only in the OpenMetrics rendition (WriteOpenMetrics); the
// default Prometheus 0.0.4 output is unchanged.
type Histogram struct {
	bounds []uint64
	counts []atomic.Int64 // len(bounds)+1, non-cumulative
	sum    atomic.Int64
	ex     []exemplarSlot // len(bounds)+1, last traced observation per bucket
}

// exemplarSlot records the most recent traced observation in one bucket.
// The id and value are stored with two independent atomics, so a reader
// racing two writers may pair an id with the other writer's value — an
// acceptable imprecision for a best-effort debugging pointer, in exchange
// for keeping the record path wait-free and allocation-free.
type exemplarSlot struct {
	id  atomic.Uint64
	val atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(int64(v))
}

// ObserveEx records one value, stamping the bucket's exemplar with the
// given trace id when it is nonzero. A zero trace id (untraced
// observation) is exactly Observe.
func (h *Histogram) ObserveEx(v, traceID uint64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(int64(v))
	if traceID != 0 {
		h.ex[i].id.Store(traceID)
		h.ex[i].val.Store(v)
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// metricType discriminates the exposition format of a family.
type metricType int

const (
	counterType metricType = iota
	gaugeType
	histogramType
)

func (t metricType) String() string {
	switch t {
	case counterType:
		return "counter"
	case gaugeType:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one registered metric: a value plus its label set.
type series struct {
	labels []Label
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family groups every series sharing a metric name (and therefore help text
// and type), as the exposition format requires.
type family struct {
	name   string
	help   string
	typ    metricType
	series []*series          // insertion order
	byKey  map[string]*series // rendered-label key -> series
}

// Registry holds a set of metric families. Registration methods are
// get-or-create and safe for concurrent use; the returned metric pointers
// are stable for the life of the registry.
type Registry struct {
	mu       sync.Mutex
	families []*family // insertion order, for stable exposition
	byName   map[string]*family
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// lookup finds or creates the series for (name, labels), creating the
// metric value under the registry lock, and enforces that a name keeps one
// type. Mixing types under one name is a programming error and panics, like
// expvar's duplicate Publish. bounds are only used for histogramType, and
// only on first creation.
func (r *Registry) lookup(name, help string, typ metricType, bounds []uint64, labels []Label) *series {
	key := labelKey(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	fam := r.byName[name]
	if fam == nil {
		fam = &family{name: name, help: help, typ: typ, byKey: make(map[string]*series)}
		r.byName[name] = fam
		r.families = append(r.families, fam)
	}
	if fam.typ != typ {
		panic(fmt.Sprintf("telemetry: metric %q registered as %s and %s", name, fam.typ, typ))
	}
	sr := fam.byKey[key]
	if sr == nil {
		sr = &series{labels: append([]Label(nil), labels...)}
		switch typ {
		case counterType:
			sr.c = &Counter{}
		case gaugeType:
			sr.g = &Gauge{}
		case histogramType:
			b := append([]uint64(nil), bounds...)
			sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
			sr.h = &Histogram{
				bounds: b,
				counts: make([]atomic.Int64, len(b)+1),
				ex:     make([]exemplarSlot, len(b)+1),
			}
		}
		fam.byKey[key] = sr
		fam.series = append(fam.series, sr)
	}
	return sr
}

// Counter returns the counter registered under name with the given labels,
// creating it on first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.lookup(name, help, counterType, nil, labels).c
}

// Gauge returns the gauge registered under name with the given labels,
// creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.lookup(name, help, gaugeType, nil, labels).g
}

// Histogram returns the histogram registered under name with the given
// labels, creating it with the given bucket bounds (ascending upper bounds;
// an overflow bucket is implicit) on first use. An existing series keeps
// its original bounds.
func (r *Registry) Histogram(name, help string, bounds []uint64, labels ...Label) *Histogram {
	return r.lookup(name, help, histogramType, bounds, labels).h
}

// Names returns every registered metric family name, sorted. Tests use it
// to audit that each registered metric actually appears in the exposition.
func (r *Registry) Names() []string {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for _, fam := range r.families {
		names = append(names, fam.name)
	}
	r.mu.Unlock()
	sort.Strings(names)
	return names
}

// labelKey renders labels into a map key. Label order is significant for
// identity, matching how instrumentation sites register them.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for _, l := range labels {
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
		b.WriteByte(',')
	}
	return b.String()
}
