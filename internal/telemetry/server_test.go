package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestServerEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("srv_hits_total", "Hits.").Add(12)
	s, err := NewServer("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.HandleJSON("/debug/pipeline", func() any {
		return map[string]int{"shards": 3}
	})
	base := "http://" + s.Addr()

	if code, body := get(t, base+"/healthz"); code != 200 || body != "ok\n" {
		t.Errorf("/healthz = %d %q", code, body)
	}
	if code, body := get(t, base+"/metrics"); code != 200 || !strings.Contains(body, "srv_hits_total 12") {
		t.Errorf("/metrics = %d, missing counter sample:\n%s", code, body)
	}
	code, body := get(t, base+"/debug/vars")
	if code != 200 {
		t.Fatalf("/debug/vars = %d", code)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/debug/vars is not a JSON object: %v", err)
	}
	if code, body := get(t, base+"/debug/pipeline"); code != 200 || !strings.Contains(body, `"shards": 3`) {
		t.Errorf("/debug/pipeline = %d %q", code, body)
	}
	if code, _ := get(t, base+"/debug/pprof/cmdline"); code != 200 {
		t.Errorf("/debug/pprof/cmdline = %d", code)
	}

	if err := s.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}
