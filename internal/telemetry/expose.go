package telemetry

import (
	"bufio"
	"expvar"
	"io"
	"strconv"
	"strings"
	"sync"
)

// This file renders a Registry for consumption: Prometheus text exposition
// (format version 0.0.4, hand-rolled — the format is line-oriented and
// stable, and the module takes no dependencies) and an expvar snapshot for
// /debug/vars.

// WritePrometheus writes every family in registration order. Values are
// read with atomic loads while traffic keeps flowing; a scrape sees each
// series at some instant, not a consistent cut — the standard Prometheus
// contract.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, fam := range r.snapshotFamilies() {
		bw.WriteString("# HELP ")
		bw.WriteString(fam.name)
		bw.WriteByte(' ')
		bw.WriteString(escapeHelp(fam.help))
		bw.WriteString("\n# TYPE ")
		bw.WriteString(fam.name)
		bw.WriteByte(' ')
		bw.WriteString(fam.typ.String())
		bw.WriteByte('\n')
		for _, sr := range fam.series {
			switch fam.typ {
			case counterType:
				writeSample(bw, fam.name, "", sr.labels, "", sr.c.Load())
			case gaugeType:
				writeSample(bw, fam.name, "", sr.labels, "", sr.g.Load())
			case histogramType:
				writeHistogram(bw, fam.name, sr)
			}
		}
	}
	return bw.Flush()
}

// WriteOpenMetrics writes the registry in an OpenMetrics-flavored text
// rendition: the same line-oriented families as WritePrometheus, plus
// per-bucket exemplars (`# {trace_id="..."} value`) linking histogram
// buckets to traces in the trace ring, and the mandatory `# EOF`
// terminator. Family names are kept verbatim (the repo's counters already
// carry the _total suffix), so a scraper sees the same series under both
// content types. Served when a scrape negotiates
// application/openmetrics-text; the default 0.0.4 output is byte-stable.
func (r *Registry) WriteOpenMetrics(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, fam := range r.snapshotFamilies() {
		bw.WriteString("# HELP ")
		bw.WriteString(fam.name)
		bw.WriteByte(' ')
		bw.WriteString(escapeHelp(fam.help))
		bw.WriteString("\n# TYPE ")
		bw.WriteString(fam.name)
		bw.WriteByte(' ')
		bw.WriteString(fam.typ.String())
		bw.WriteByte('\n')
		for _, sr := range fam.series {
			switch fam.typ {
			case counterType:
				writeSample(bw, fam.name, "", sr.labels, "", sr.c.Load())
			case gaugeType:
				writeSample(bw, fam.name, "", sr.labels, "", sr.g.Load())
			case histogramType:
				writeHistogramExemplars(bw, fam.name, sr)
			}
		}
	}
	bw.WriteString("# EOF\n")
	return bw.Flush()
}

// writeHistogramExemplars is writeHistogram with each bucket's exemplar
// (when one has been recorded) appended OpenMetrics-style.
func writeHistogramExemplars(bw *bufio.Writer, name string, sr *series) {
	h := sr.h
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		le := "+Inf"
		if i < len(h.bounds) {
			le = strconv.FormatUint(h.bounds[i], 10)
		}
		writeSampleExemplar(bw, name, sr.labels, le, cum, &h.ex[i])
	}
	writeSample(bw, name, "_sum", sr.labels, "", h.sum.Load())
	writeSample(bw, name, "_count", sr.labels, "", cum)
}

// writeSampleExemplar emits one cumulative bucket line, with a trailing
// `# {trace_id="..."} value` exemplar when the bucket has one.
func writeSampleExemplar(bw *bufio.Writer, name string, labels []Label, le string, v int64, ex *exemplarSlot) {
	bw.WriteString(name)
	bw.WriteString("_bucket{")
	for i, l := range labels {
		if i > 0 {
			bw.WriteByte(',')
		}
		bw.WriteString(l.Key)
		bw.WriteString(`="`)
		bw.WriteString(escapeLabel(l.Value))
		bw.WriteByte('"')
	}
	if len(labels) > 0 {
		bw.WriteByte(',')
	}
	bw.WriteString(`le="`)
	bw.WriteString(le)
	bw.WriteString(`"} `)
	bw.WriteString(strconv.FormatInt(v, 10))
	if id := ex.id.Load(); id != 0 {
		bw.WriteString(` # {trace_id="`)
		var hex [16]byte
		const digits = "0123456789abcdef"
		for i := 0; i < 16; i++ {
			hex[i] = digits[(id>>uint(60-4*i))&0xf]
		}
		bw.Write(hex[:])
		bw.WriteString(`"} `)
		bw.WriteString(strconv.FormatUint(ex.val.Load(), 10))
	}
	bw.WriteByte('\n')
}

// snapshotFamilies copies the family/series structure under the lock so
// exposition never races registration. The metric values themselves are
// atomics and are read lock-free afterwards.
func (r *Registry) snapshotFamilies() []*family {
	r.mu.Lock()
	defer r.mu.Unlock()
	fams := make([]*family, len(r.families))
	copy(fams, r.families)
	out := make([]*family, len(fams))
	for i, fam := range fams {
		cp := &family{name: fam.name, help: fam.help, typ: fam.typ}
		cp.series = make([]*series, len(fam.series))
		copy(cp.series, fam.series)
		out[i] = cp
	}
	return out
}

// writeHistogram emits the cumulative bucket series plus _sum and _count.
func writeHistogram(bw *bufio.Writer, name string, sr *series) {
	h := sr.h
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		le := "+Inf"
		if i < len(h.bounds) {
			le = strconv.FormatUint(h.bounds[i], 10)
		}
		writeSample(bw, name, "_bucket", sr.labels, le, cum)
	}
	writeSample(bw, name, "_sum", sr.labels, "", h.sum.Load())
	writeSample(bw, name, "_count", sr.labels, "", cum)
}

// writeSample emits one `name_suffix{labels,le="x"} value` line.
func writeSample(bw *bufio.Writer, name, suffix string, labels []Label, le string, v int64) {
	bw.WriteString(name)
	bw.WriteString(suffix)
	if len(labels) > 0 || le != "" {
		bw.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				bw.WriteByte(',')
			}
			bw.WriteString(l.Key)
			bw.WriteString(`="`)
			bw.WriteString(escapeLabel(l.Value))
			bw.WriteByte('"')
		}
		if le != "" {
			if len(labels) > 0 {
				bw.WriteByte(',')
			}
			bw.WriteString(`le="`)
			bw.WriteString(le)
			bw.WriteByte('"')
		}
		bw.WriteByte('}')
	}
	bw.WriteByte(' ')
	bw.WriteString(strconv.FormatInt(v, 10))
	bw.WriteByte('\n')
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// Snapshot returns the registry as nested plain values for expvar/JSON:
// series name (with rendered labels) -> number, or for histograms a map
// with count, sum, and per-upper-bound bucket counts.
func (r *Registry) Snapshot() map[string]any {
	out := make(map[string]any)
	for _, fam := range r.snapshotFamilies() {
		for _, sr := range fam.series {
			key := fam.name
			if len(sr.labels) > 0 {
				parts := make([]string, len(sr.labels))
				for i, l := range sr.labels {
					parts[i] = l.Key + "=" + l.Value
				}
				key += "{" + strings.Join(parts, ",") + "}"
			}
			switch fam.typ {
			case counterType:
				out[key] = sr.c.Load()
			case gaugeType:
				out[key] = sr.g.Load()
			case histogramType:
				h := sr.h
				buckets := make(map[string]int64, len(h.counts))
				for i := range h.counts {
					le := "+Inf"
					if i < len(h.bounds) {
						le = strconv.FormatUint(h.bounds[i], 10)
					}
					buckets[le] = h.counts[i].Load()
				}
				out[key] = map[string]any{
					"count":   h.Count(),
					"sum":     h.sum.Load(),
					"buckets": buckets,
				}
			}
		}
	}
	return out
}

var expvarMu sync.Mutex

// PublishExpvar exposes the registry's Snapshot under the given expvar
// name. expvar is process-global and rejects duplicate names by panicking,
// so the first registry published under a name wins and later calls are
// no-ops — one System per process is the expected deployment; tests
// spinning up many Systems share the first one's /debug/vars entry.
func (r *Registry) PublishExpvar(name string) {
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}
