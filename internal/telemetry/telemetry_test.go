package telemetry

import (
	"strings"
	"sync"
	"testing"
)

// TestPrometheusExposition pins the exposition format byte-for-byte: family
// ordering (registration order), HELP/TYPE headers, label rendering, and
// cumulative histogram buckets with _sum/_count.
func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("pq_requests_total", "Total requests.", L("op", "get")).Add(3)
	r.Counter("pq_requests_total", "Total requests.", L("op", "put")).Inc()
	r.Gauge("pq_depth", "Current depth.").Set(7)
	h := r.Histogram("pq_latency_ns", "Request latency.", []uint64{1000, 1000000})
	h.Observe(500)       // first bucket
	h.Observe(1000)      // upper bounds are inclusive: still the first bucket
	h.Observe(2000)      // second bucket
	h.Observe(5_000_000) // overflow (+Inf)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP pq_requests_total Total requests.
# TYPE pq_requests_total counter
pq_requests_total{op="get"} 3
pq_requests_total{op="put"} 1
# HELP pq_depth Current depth.
# TYPE pq_depth gauge
pq_depth 7
# HELP pq_latency_ns Request latency.
# TYPE pq_latency_ns histogram
pq_latency_ns_bucket{le="1000"} 2
pq_latency_ns_bucket{le="1000000"} 3
pq_latency_ns_bucket{le="+Inf"} 4
pq_latency_ns_sum 5003500
pq_latency_ns_count 4
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestGetOrCreate verifies that registration is idempotent per (name,
// labels): the same series pointer comes back, and distinct label sets get
// distinct series.
func TestGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("c_total", "help", L("shard", "0"))
	b := r.Counter("c_total", "help", L("shard", "0"))
	c := r.Counter("c_total", "help", L("shard", "1"))
	if a != b {
		t.Error("same name+labels returned different counters")
	}
	if a == c {
		t.Error("different labels returned the same counter")
	}
	h1 := r.Histogram("h_ns", "help", []uint64{10, 20})
	h2 := r.Histogram("h_ns", "help", []uint64{99})
	if h1 != h2 {
		t.Error("histogram re-registration did not return the existing series")
	}
}

func TestTypeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("registering one name as two types did not panic")
		}
	}()
	r := NewRegistry()
	r.Counter("x", "help")
	r.Gauge("x", "help")
}

func TestGaugeMax(t *testing.T) {
	var g Gauge
	g.Max(5)
	g.Max(3)
	g.Max(9)
	if got := g.Load(); got != 9 {
		t.Errorf("high-watermark = %d, want 9", got)
	}
}

// TestConcurrentRecordScrape hammers every metric kind from many
// goroutines while scraping exposition and snapshots — the -race proof
// that the record path and the scrape path can overlap a live pipeline.
func TestConcurrentRecordScrape(t *testing.T) {
	r := NewRegistry()
	const writers = 8
	const perWriter = 2000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("rc_total", "help", L("w", string(rune('a'+w))))
			g := r.Gauge("rc_gauge", "help")
			h := r.Histogram("rc_ns", "help", LatencyBuckets)
			for i := 0; i < perWriter; i++ {
				c.Inc()
				g.Max(int64(i))
				h.Observe(uint64(i) * 1700)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		var b strings.Builder
		if err := r.WritePrometheus(&b); err != nil {
			t.Error(err)
		}
		_ = r.Snapshot()
		select {
		case <-done:
			// One final scrape after all writers retired must see the totals.
			h := r.Histogram("rc_ns", "help", LatencyBuckets)
			if got := h.Count(); got != writers*perWriter {
				t.Errorf("histogram count = %d, want %d", got, writers*perWriter)
			}
			return
		default:
		}
	}
}
