// Package metrics implements the paper's evaluation arithmetic: per-query
// precision and recall over per-flow packet counts (true positives are the
// per-flow minimum of estimate and truth), top-K variants, CDFs, and small
// summary helpers used by the experiment drivers.
package metrics

import (
	"math"
	"sort"

	"printqueue/internal/flow"
)

// PrecisionRecall computes the paper's §7.1 accuracy metric. For every flow
// in the query period the true positives are min(estimate, truth); precision
// is the TP sum over the cumulative estimate, recall the TP sum over the
// cumulative truth. Both are 1 exactly when the estimate equals the truth.
//
// Empty-denominator conventions: an empty truth with an empty estimate is a
// perfect answer (1, 1); an empty truth with a non-empty estimate has
// precision 0 and recall 1; the mirror case has precision 1 and recall 0.
func PrecisionRecall(estimate, truth flow.Counts) (precision, recall float64) {
	var tp float64
	for f, e := range estimate {
		if t, ok := truth[f]; ok {
			tp += math.Min(e, t)
		}
	}
	est := estimate.Total()
	tru := truth.Total()
	switch {
	case est == 0 && tru == 0:
		return 1, 1
	case est == 0:
		return 1, 0
	case tru == 0:
		return 0, 1
	}
	return tp / est, tp / tru
}

// TopK restricts c to its k largest flows.
func TopK(c flow.Counts, k int) flow.Counts {
	out := make(flow.Counts, k)
	for _, e := range c.TopK(k) {
		out[e.Flow] = e.Count
	}
	return out
}

// TopKPrecisionRecall evaluates the estimate's top-K flows against the
// truth's top-K flows — the Figure-12 metric. Precision sums TP over the
// estimate's top-K mass; recall sums TP over the truth's top-K mass.
func TopKPrecisionRecall(estimate, truth flow.Counts, k int) (precision, recall float64) {
	estK := TopK(estimate, k)
	truK := TopK(truth, k)
	var tpEst, tpTru float64
	for f, e := range estK {
		if t, ok := truth[f]; ok {
			tpEst += math.Min(e, t)
		}
	}
	for f, t := range truK {
		if e, ok := estimate[f]; ok {
			tpTru += math.Min(e, t)
		}
	}
	est := estK.Total()
	tru := truK.Total()
	switch {
	case est == 0 && tru == 0:
		return 1, 1
	case est == 0:
		return 1, 0
	case tru == 0:
		return 0, 1
	}
	return tpEst / est, tpTru / tru
}

// Sample accumulates scalar observations and reports order statistics.
type Sample struct {
	vals   []float64
	sorted bool
}

// Add appends one observation.
func (s *Sample) Add(v float64) {
	s.vals = append(s.vals, v)
	s.sorted = false
}

// N returns the number of observations.
func (s *Sample) N() int { return len(s.vals) }

// Mean returns the arithmetic mean (0 for an empty sample).
func (s *Sample) Mean() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	var t float64
	for _, v := range s.vals {
		t += v
	}
	return t / float64(len(s.vals))
}

func (s *Sample) sort() {
	if !s.sorted {
		sort.Float64s(s.vals)
		s.sorted = true
	}
}

// Quantile returns the q-th quantile (0 <= q <= 1) by linear interpolation;
// 0 for an empty sample.
func (s *Sample) Quantile(q float64) float64 {
	if len(s.vals) == 0 {
		return 0
	}
	s.sort()
	if q <= 0 {
		return s.vals[0]
	}
	if q >= 1 {
		return s.vals[len(s.vals)-1]
	}
	pos := q * float64(len(s.vals)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s.vals) {
		return s.vals[lo]
	}
	return s.vals[lo]*(1-frac) + s.vals[lo+1]*frac
}

// Median returns the 50th percentile.
func (s *Sample) Median() float64 { return s.Quantile(0.5) }

// CDF returns the empirical CDF evaluated at the given thresholds:
// fraction of observations <= each threshold.
func (s *Sample) CDF(thresholds []float64) []float64 {
	s.sort()
	out := make([]float64, len(thresholds))
	if len(s.vals) == 0 {
		return out
	}
	for i, th := range thresholds {
		n := sort.SearchFloat64s(s.vals, math.Nextafter(th, math.Inf(1)))
		out[i] = float64(n) / float64(len(s.vals))
	}
	return out
}

// Values returns the sorted observations (aliased; callers must not
// modify).
func (s *Sample) Values() []float64 {
	s.sort()
	return s.vals
}
