package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"printqueue/internal/flow"
)

func k(n byte) flow.Key {
	return flow.Key{SrcIP: [4]byte{10, 0, 0, n}, DstIP: [4]byte{10, 0, 1, 1}, SrcPort: 1, DstPort: 2, Proto: flow.ProtoTCP}
}

func TestPrecisionRecall(t *testing.T) {
	tests := []struct {
		name       string
		est, truth flow.Counts
		p, r       float64
	}{
		{"exact", flow.Counts{k(1): 5, k(2): 3}, flow.Counts{k(1): 5, k(2): 3}, 1, 1},
		{"overestimate", flow.Counts{k(1): 10}, flow.Counts{k(1): 5}, 0.5, 1},
		{"underestimate", flow.Counts{k(1): 5}, flow.Counts{k(1): 10}, 1, 0.5},
		{"wrong flow", flow.Counts{k(2): 5}, flow.Counts{k(1): 5}, 0, 0},
		{"mixed", flow.Counts{k(1): 4, k(2): 4}, flow.Counts{k(1): 8}, 0.5, 0.5},
		{"both empty", flow.Counts{}, flow.Counts{}, 1, 1},
		{"empty estimate", flow.Counts{}, flow.Counts{k(1): 5}, 1, 0},
		{"empty truth", flow.Counts{k(1): 5}, flow.Counts{}, 0, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p, r := PrecisionRecall(tt.est, tt.truth)
			if math.Abs(p-tt.p) > 1e-12 || math.Abs(r-tt.r) > 1e-12 {
				t.Fatalf("got %v/%v, want %v/%v", p, r, tt.p, tt.r)
			}
		})
	}
}

// TestPrecisionRecallBounds property-checks 0 <= p, r <= 1 and the
// perfect-answer characterization.
func TestPrecisionRecallBounds(t *testing.T) {
	f := func(a, b, c, d uint8) bool {
		est := flow.Counts{k(1): float64(a), k(2): float64(b)}
		truth := flow.Counts{k(1): float64(c), k(3): float64(d)}
		p, r := PrecisionRecall(est, truth)
		return p >= 0 && p <= 1 && r >= 0 && r <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTopKPrecisionRecall(t *testing.T) {
	est := flow.Counts{k(1): 100, k(2): 50, k(3): 1}
	truth := flow.Counts{k(1): 100, k(2): 50, k(4): 200}
	p, r := TopKPrecisionRecall(est, truth, 2)
	// Estimate's top-2 = {1:100, 2:50}, all correct -> precision 1.
	if p != 1 {
		t.Fatalf("precision = %v, want 1", p)
	}
	// Truth's top-2 = {4:200, 1:100}; found 100 of 300 -> recall 1/3.
	if math.Abs(r-1.0/3) > 1e-12 {
		t.Fatalf("recall = %v, want 1/3", r)
	}
	// K = 0 means all flows.
	pAll, _ := TopKPrecisionRecall(est, truth, 0)
	if pAll >= 1 {
		t.Fatalf("all-flows precision = %v, want < 1 (flow 3 is wrong)", pAll)
	}
}

func TestSampleStats(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.Median() != 0 || s.N() != 0 {
		t.Fatal("empty sample stats nonzero")
	}
	for _, v := range []float64{4, 1, 3, 2} {
		s.Add(v)
	}
	if s.N() != 4 || s.Mean() != 2.5 {
		t.Fatalf("mean = %v", s.Mean())
	}
	if got := s.Median(); got != 2.5 {
		t.Fatalf("median = %v", got)
	}
	if got := s.Quantile(0); got != 1 {
		t.Fatalf("q0 = %v", got)
	}
	if got := s.Quantile(1); got != 4 {
		t.Fatalf("q1 = %v", got)
	}
	// Adding after sorting re-sorts.
	s.Add(0)
	if got := s.Quantile(0); got != 0 {
		t.Fatalf("q0 after add = %v", got)
	}
}

func TestCDF(t *testing.T) {
	var s Sample
	for _, v := range []float64{0.1, 0.5, 0.5, 0.9} {
		s.Add(v)
	}
	got := s.CDF([]float64{0, 0.1, 0.5, 1})
	want := []float64{0, 0.25, 0.75, 1}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("CDF = %v, want %v", got, want)
		}
	}
	var empty Sample
	for _, v := range empty.CDF([]float64{0.5}) {
		if v != 0 {
			t.Fatal("empty CDF nonzero")
		}
	}
}

func TestTopKRestrict(t *testing.T) {
	c := flow.Counts{k(1): 5, k(2): 3, k(3): 1}
	top := TopK(c, 2)
	if len(top) != 2 || top[k(3)] != 0 || top[k(1)] != 5 {
		t.Fatalf("TopK = %v", top)
	}
}
