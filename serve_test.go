package printqueue

import (
	"testing"
	"time"
)

// TestServeEndToEnd runs a simulation, serves queries over TCP, and
// diagnoses a victim through the network client.
func TestServeEndToEnd(t *testing.T) {
	sw, err := NewSwitch(SwitchConfig{Ports: 1, LinkBps: 10e9, BufferCells: 60000})
	if err != nil {
		t.Fatal(err)
	}
	pq, err := New(Config{
		TimeWindows:  TimeWindowConfig{M0: 10, K: 12, Alpha: 1, T: 4, MinPktTxDelay: 1200 * time.Nanosecond},
		QueueMonitor: QueueMonitorConfig{MaxDepthCells: 65536, GranuleCells: 19},
		Ports:        []int{0},
	})
	if err != nil {
		t.Fatal(err)
	}
	pq.Attach(sw)
	tlog := sw.AttachLog(0)
	pkts, _, err := Microburst(MicroburstScenario{
		LinkBps: 10e9, Seed: 5, BurstStart: time.Millisecond, Duration: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkts {
		sw.Inject(p)
	}
	sw.Flush()
	pq.Finalize(sw.Now() + 1)

	svc, err := pq.Serve("127.0.0.1:0", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	client, err := DialQueries(svc.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	victims := tlog.Victims(1000, 1)
	if len(victims) == 0 {
		t.Fatal("no victims")
	}
	v := tlog.Record(victims[0])
	remote, err := client.Interval(0, v.EnqTime, v.DeqTime)
	if err != nil {
		t.Fatal(err)
	}
	local, err := pq.QueryInterval(0, v.EnqTime, v.DeqTime)
	if err != nil {
		t.Fatal(err)
	}
	if len(remote) != len(local) {
		t.Fatalf("remote %d flows, local %d", len(remote), len(local))
	}
	for i := range local {
		if remote[i].Flow != local[i].Flow || remote[i].Packets != local[i].Packets {
			t.Fatalf("entry %d differs: %+v vs %+v", i, remote[i], local[i])
		}
	}
	orig, err := client.Original(0, 0, v.EnqTime)
	if err != nil {
		t.Fatal(err)
	}
	if orig.Total() == 0 {
		t.Fatal("remote original query empty")
	}
	if _, err := client.Interval(7, 0, 1); err == nil {
		t.Fatal("remote bad-port query succeeded")
	}
}

// TestServeMuxEndToEnd drives the same fixture through the binary
// multiplexed client: single queries, a mixed batch, and agreement with
// the JSON client on the same listener.
func TestServeMuxEndToEnd(t *testing.T) {
	pq, err := New(Config{
		TimeWindows:  TimeWindowConfig{M0: 3, K: 6, Alpha: 1, T: 3, MinPktTxDelay: 10 * time.Nanosecond},
		QueueMonitor: QueueMonitorConfig{MaxDepthCells: 1024, GranuleCells: 4},
		Ports:        []int{0},
	})
	if err != nil {
		t.Fatal(err)
	}
	var ts uint64 = 1000
	for i := 0; i < 50; i++ {
		ts += 10
		pq.Observe(Packet{Flow: testFlow(byte(i % 3)), Bytes: 100, Port: 0}, ts-40, ts, 8)
	}
	pq.Finalize(ts + 1)

	svc, err := pq.Serve("127.0.0.1:0", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	mux, err := DialQueriesMux(svc.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer mux.Close()
	jsonc, err := DialQueries(svc.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer jsonc.Close()

	viaMux, err := mux.Interval(0, 1000, ts+1)
	if err != nil {
		t.Fatal(err)
	}
	viaJSON, err := jsonc.Interval(0, 1000, ts+1)
	if err != nil {
		t.Fatal(err)
	}
	if len(viaMux) != len(viaJSON) {
		t.Fatalf("mux %d flows, json %d", len(viaMux), len(viaJSON))
	}
	for i := range viaJSON {
		if viaMux[i] != viaJSON[i] {
			t.Fatalf("entry %d differs across protocols: %+v vs %+v", i, viaMux[i], viaJSON[i])
		}
	}

	rs, err := mux.Batch([]BatchQuery{
		{Kind: "interval", Port: 0, Start: 1000, End: ts + 1},
		{Kind: "original", Port: 0, Queue: 0, At: ts},
		{Kind: "interval", Port: 7, Start: 0, End: 1}, // per-query error
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 {
		t.Fatalf("batch returned %d results, want 3", len(rs))
	}
	if rs[0].Err != nil || rs[0].Report.Total() != viaJSON.Total() {
		t.Fatalf("batch[0] = %+v, want the interval report", rs[0])
	}
	if rs[1].Err != nil || rs[1].Report.Total() == 0 {
		t.Fatalf("batch[1] = %+v, want original culprits", rs[1])
	}
	if rs[2].Err == nil {
		t.Fatal("batch[2] bad-port query succeeded")
	}
	if _, err := mux.Batch([]BatchQuery{{Kind: "bogus"}}); err == nil {
		t.Fatal("unknown batch kind accepted")
	}
	if rs, err := mux.Batch(nil); rs != nil || err != nil {
		t.Fatalf("empty batch = %v, %v", rs, err)
	}
	if mux.InFlight() != 0 {
		t.Errorf("InFlight() = %d at rest, want 0", mux.InFlight())
	}
	_ = mux.Timeouts()
	_ = mux.Retries()
	_ = mux.Reconnects()
}

func TestDialQueriesError(t *testing.T) {
	if _, err := DialQueries("127.0.0.1:1"); err == nil {
		t.Skip("something is listening on port 1")
	}
}

// TestServeResilienceEndToEnd exercises the public resilience surface: a
// server with a short idle timeout closes the client's connection between
// queries, and the client transparently redials and answers the second
// query, counting the reconnect.
func TestServeResilienceEndToEnd(t *testing.T) {
	pq, err := New(Config{
		TimeWindows:  TimeWindowConfig{M0: 3, K: 6, Alpha: 1, T: 3, MinPktTxDelay: 10 * time.Nanosecond},
		QueueMonitor: QueueMonitorConfig{MaxDepthCells: 1024, GranuleCells: 4},
		Ports:        []int{0},
	})
	if err != nil {
		t.Fatal(err)
	}
	var ts uint64 = 1000
	for i := 0; i < 50; i++ {
		ts += 10
		pq.Observe(Packet{Flow: testFlow(byte(i % 3)), Bytes: 100, Port: 0}, ts-40, ts, 8)
	}
	pq.Finalize(ts + 1)

	svc, err := pq.ServeOpts("127.0.0.1:0", 2, ServeOptions{IdleTimeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	client, err := DialQueriesOpts(svc.Addr(), DialOptions{
		Timeout: 2 * time.Second, MaxRetries: 3, BackoffBase: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	first, err := client.Interval(0, 1000, ts+1)
	if err != nil {
		t.Fatal(err)
	}
	if first.Total() < 45 {
		t.Fatalf("first query recovered %v packets, want ~50", first.Total())
	}
	// Wait out the server's idle deadline so it closes the connection.
	time.Sleep(300 * time.Millisecond)
	second, err := client.Interval(0, 1000, ts+1)
	if err != nil {
		t.Fatalf("query after idle disconnect: %v", err)
	}
	if second.Total() != first.Total() {
		t.Fatalf("second query recovered %v packets, want %v", second.Total(), first.Total())
	}
	if client.Reconnects() < 1 {
		t.Errorf("Reconnects() = %d after idle disconnect, want >= 1", client.Reconnects())
	}
	if client.Retries() < 1 {
		t.Errorf("Retries() = %d after idle disconnect, want >= 1", client.Retries())
	}
}
