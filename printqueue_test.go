package printqueue

import (
	"testing"
	"time"
)

func testFlow(n byte) FlowID {
	return FlowID{SrcIP: [4]byte{10, 0, 0, n}, DstIP: [4]byte{10, 0, 1, 1}, SrcPort: 100, DstPort: 80, Proto: 6}
}

func TestConfigValidate(t *testing.T) {
	cfg := DefaultConfig(0)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := cfg
	bad.TimeWindows.T = 0
	if err := bad.Validate(); err == nil {
		t.Error("bad time windows accepted")
	}
	bad = cfg
	bad.QueueMonitor.GranuleCells = 0
	if err := bad.Validate(); err == nil {
		t.Error("bad queue monitor accepted")
	}
	bad = cfg
	bad.Ports = nil
	if err := bad.Validate(); err == nil {
		t.Error("no ports accepted")
	}
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig()
	if len(cfg.Ports) != 1 || cfg.Ports[0] != 0 {
		t.Fatalf("default ports = %v", cfg.Ports)
	}
	cfg = DefaultConfig(2, 5)
	if len(cfg.Ports) != 2 {
		t.Fatalf("ports = %v", cfg.Ports)
	}
	// The UW set period: (2^8-1)/3 * 2^18 ns = 85 * 262144 ns ~ 22.3 ms.
	if got := cfg.TimeWindows.SetPeriod(); got != 85*262144*time.Nanosecond {
		t.Fatalf("set period = %v", got)
	}
}

func TestM0For(t *testing.T) {
	if got := M0For(80 * time.Nanosecond); got != 6 {
		t.Fatalf("M0For(80ns) = %d", got)
	}
	if got := M0For(1200 * time.Nanosecond); got != 10 {
		t.Fatalf("M0For(1200ns) = %d", got)
	}
}

func TestFlowIDStringRoundTrip(t *testing.T) {
	f := testFlow(9)
	got, err := ParseFlowID(f.String())
	if err != nil || got != f {
		t.Fatalf("round trip: %v, %v", got, err)
	}
	if _, err := ParseFlowID("garbage"); err == nil {
		t.Fatal("garbage parsed")
	}
}

func TestReportHelpers(t *testing.T) {
	r := Report{{Flow: testFlow(1), Packets: 5}, {Flow: testFlow(2), Packets: 3}}
	if r.Total() != 8 {
		t.Fatalf("Total = %v", r.Total())
	}
	if r.Find(testFlow(2)) != 3 || r.Find(testFlow(9)) != 0 {
		t.Fatal("Find wrong")
	}
	cs := []Culprit{{Flow: testFlow(1), Packets: 1}, {Flow: testFlow(2), Packets: 9}}
	SortCulprits(cs)
	if cs[0].Packets != 9 {
		t.Fatalf("sort wrong: %v", cs)
	}
}

func TestAccuracy(t *testing.T) {
	est := Report{{Flow: testFlow(1), Packets: 10}}
	truth := Report{{Flow: testFlow(1), Packets: 5}}
	p, r := Accuracy(est, truth)
	if p != 0.5 || r != 1 {
		t.Fatalf("accuracy = %v/%v", p, r)
	}
	p, r = Accuracy(nil, nil)
	if p != 1 || r != 1 {
		t.Fatalf("empty accuracy = %v/%v", p, r)
	}
}

// TestEndToEnd drives the whole public API: switch, system, scenario,
// queries, ground truth.
func TestEndToEnd(t *testing.T) {
	sw, err := NewSwitch(SwitchConfig{Ports: 1, LinkBps: 10e9, BufferCells: 60000})
	if err != nil {
		t.Fatal(err)
	}
	pq, err := New(Config{
		TimeWindows:  TimeWindowConfig{M0: 10, K: 12, Alpha: 1, T: 4, MinPktTxDelay: 1200 * time.Nanosecond},
		QueueMonitor: QueueMonitorConfig{MaxDepthCells: 65536, GranuleCells: 19},
		Ports:        []int{0},
	})
	if err != nil {
		t.Fatal(err)
	}
	pq.Attach(sw)
	tlog := sw.AttachLog(0)

	pkts, bg, err := Microburst(MicroburstScenario{
		LinkBps:    10e9,
		Seed:       1,
		BurstStart: time.Millisecond,
		Duration:   5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkts {
		sw.Inject(p)
	}
	sw.Flush()
	pq.Finalize(sw.Now() + 1)

	if tlog.Len() == 0 {
		t.Fatal("no packets logged")
	}
	victims := tlog.VictimsOf(bg, 0)
	if len(victims) == 0 {
		t.Fatal("background flow never dequeued")
	}
	worst := victims[0]
	for _, i := range victims {
		if tlog.Record(i).DepthCells > tlog.Record(worst).DepthCells {
			worst = i
		}
	}
	v := tlog.Record(worst)
	if v.DepthCells < 100 {
		t.Fatalf("burst built no queue: %d cells", v.DepthCells)
	}
	rep, err := pq.QueryInterval(0, v.EnqTime, v.DeqTime)
	if err != nil {
		t.Fatal(err)
	}
	p, r := Accuracy(rep, tlog.DirectTruth(worst))
	if p < 0.7 || r < 0.7 {
		t.Fatalf("direct accuracy %v/%v too low", p, r)
	}
	// Indirect query and regime.
	regime := tlog.RegimeStart(worst)
	if regime >= v.EnqTime {
		t.Fatalf("regime start %d not before enqueue %d", regime, v.EnqTime)
	}
	ind, err := pq.QueryInterval(0, regime, v.EnqTime)
	if err != nil {
		t.Fatal(err)
	}
	if ind.Total() == 0 {
		t.Fatal("no indirect culprits")
	}
	// Original culprits exist and carry levels.
	levels, err := pq.OriginalLevels(0, 0, v.EnqTime)
	if err != nil {
		t.Fatal(err)
	}
	if len(levels) == 0 {
		t.Fatal("no original culprits")
	}
	for i := 1; i < len(levels); i++ {
		if levels[i].Level <= levels[i-1].Level {
			t.Fatal("original levels not increasing")
		}
	}
	orig, err := pq.QueryOriginal(0, 0, v.EnqTime)
	if err != nil {
		t.Fatal(err)
	}
	if int(orig.Total()) != len(levels) {
		t.Fatalf("aggregate %v vs %d levels", orig.Total(), len(levels))
	}
	st := pq.Stats()
	if st.PacketsObserved == 0 || st.Checkpoints == 0 || st.EntriesRead == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestObserveDirect(t *testing.T) {
	// Feed packets without the switch: the Observe path.
	pq, err := New(Config{
		TimeWindows:  TimeWindowConfig{M0: 3, K: 6, Alpha: 1, T: 3, MinPktTxDelay: 10 * time.Nanosecond},
		QueueMonitor: QueueMonitorConfig{MaxDepthCells: 1024, GranuleCells: 4},
		Ports:        []int{0},
	})
	if err != nil {
		t.Fatal(err)
	}
	var ts uint64 = 1000
	for i := 0; i < 50; i++ {
		ts += 10
		pq.Observe(Packet{Flow: testFlow(byte(i % 3)), Bytes: 100, Port: 0}, ts-40, ts, 8)
	}
	pq.Finalize(ts + 1)
	rep, err := pq.QueryInterval(0, 1000, ts+1)
	if err != nil {
		t.Fatal(err)
	}
	if tot := rep.Total(); tot < 45 || tot > 55 {
		t.Fatalf("recovered %v, want ~50", tot)
	}
}

// TestObserveClampsTimeDelta regresses the uint64 underflow: a packet whose
// dequeue timestamp precedes its enqueue timestamp (clock skew, caller bug)
// used to wrap DeqTimedelta to ~2^64 and misfile the packet into an ancient
// window. With the clamp it lands at its enqueue time and stays queryable.
func TestObserveClampsTimeDelta(t *testing.T) {
	pq, err := New(Config{
		TimeWindows:  TimeWindowConfig{M0: 3, K: 6, Alpha: 1, T: 3, MinPktTxDelay: 10 * time.Nanosecond},
		QueueMonitor: QueueMonitorConfig{MaxDepthCells: 1024, GranuleCells: 4},
		Ports:        []int{0},
	})
	if err != nil {
		t.Fatal(err)
	}
	var ts uint64 = 1000
	for i := 0; i < 50; i++ {
		ts += 10
		pq.Observe(Packet{Flow: testFlow(byte(i % 3)), Bytes: 100, Port: 0}, ts-40, ts, 8)
	}
	// Skewed packet: dequeue "before" enqueue.
	pq.Observe(Packet{Flow: testFlow(9), Bytes: 100, Port: 0}, 2000, 100, 4)
	pq.Finalize(2100)
	rep, err := pq.QueryInterval(0, 1900, 2100)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total() < 1 {
		t.Fatalf("skewed packet lost: interval [1900,2100) recovered %v packets, want >= 1", rep.Total())
	}
}

func TestDataPlaneQueriesPublic(t *testing.T) {
	sw, _ := NewSwitch(SwitchConfig{Ports: 1, LinkBps: 10e9, BufferCells: 60000})
	cfg := Config{
		TimeWindows:           TimeWindowConfig{M0: 10, K: 12, Alpha: 1, T: 4, MinPktTxDelay: 1200 * time.Nanosecond},
		QueueMonitor:          QueueMonitorConfig{MaxDepthCells: 65536, GranuleCells: 19},
		Ports:                 []int{0},
		DPTriggerDepthCells:   2000,
		ReadRateEntriesPerSec: 50e6,
	}
	pq, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pq.Attach(sw)
	pkts, _, err := Microburst(MicroburstScenario{
		LinkBps: 10e9, Seed: 2, BurstStart: time.Millisecond, Duration: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkts {
		sw.Inject(p)
	}
	sw.Flush()
	dqs := pq.DataPlaneQueries(0)
	if len(dqs) == 0 {
		t.Fatal("no data-plane queries triggered")
	}
	dq := dqs[0]
	if dq.DepthCells < 2000 || dq.Culprits.Total() == 0 || dq.ReadLatency == 0 {
		t.Fatalf("dq = %+v", dq)
	}
	if pq.Stats().SpecialFreezes == 0 {
		t.Fatal("no special freezes recorded")
	}
}

func TestSwitchErrors(t *testing.T) {
	if _, err := NewSwitch(SwitchConfig{Ports: 1}); err == nil {
		t.Fatal("zero link rate accepted")
	}
	sw, err := NewSwitch(SwitchConfig{LinkBps: 1e9}) // Ports defaults to 1
	if err != nil {
		t.Fatal(err)
	}
	if sw.Depth(0) != 0 {
		t.Fatal("fresh switch not empty")
	}
}

func TestStrictPriorityPublic(t *testing.T) {
	sw, err := NewSwitch(SwitchConfig{
		Ports: 1, LinkBps: 1e9, QueuesPerPort: 2, Scheduler: SchedulerStrictPriority,
	})
	if err != nil {
		t.Fatal(err)
	}
	tlog := sw.AttachLog(0)
	sw.Inject(Packet{Flow: testFlow(0), Bytes: 125, Arrival: 0, Queue: 0})
	sw.Inject(Packet{Flow: testFlow(1), Bytes: 125, Arrival: 10, Queue: 1})
	sw.Inject(Packet{Flow: testFlow(2), Bytes: 125, Arrival: 20, Queue: 0})
	sw.Flush()
	if tlog.Record(1).Flow != testFlow(2) {
		t.Fatalf("priority order wrong: %v", tlog.Record(1).Flow)
	}
}

func TestGenerateTracePublic(t *testing.T) {
	pkts, err := GenerateTrace(TraceConfig{
		Workload: WorkloadWS, Seed: 1, LinkBps: 10e9, Packets: 5000, Episodic: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) != 5000 {
		t.Fatalf("packets = %d", len(pkts))
	}
	if _, err := GenerateTrace(TraceConfig{Workload: WorkloadUW}); err == nil {
		t.Fatal("unbounded trace accepted")
	}
}

func TestIncastPublic(t *testing.T) {
	pkts, probe, app, err := Incast(IncastScenario{
		LinkBps: 10e9, Seed: 1, Senders: 4, ResponseBytes: 15000,
		Start: time.Millisecond, Duration: 3 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(app) != 4 || probe == app[0] || len(pkts) == 0 {
		t.Fatalf("incast: %d app flows, %d packets", len(app), len(pkts))
	}
}

func TestCaseStudyPublic(t *testing.T) {
	pkts, flows, err := CaseStudy(0.02)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) == 0 || flows.Burst == flows.Background {
		t.Fatal("case study malformed")
	}
}
