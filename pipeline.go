package printqueue

import (
	"fmt"

	"printqueue/internal/core/control"
	"printqueue/internal/pktrec"
)

// PipelineConfig tunes the sharded ingestion pipeline started by
// System.StartPipeline. The zero value picks sensible defaults for the
// machine (shards capped at GOMAXPROCS and the activated port count).
type PipelineConfig struct {
	// Shards is the number of ingestion worker goroutines. Ports are
	// partitioned across shards by activation rank, so each port's packets
	// are always processed by exactly one worker, in dequeue order.
	// 0 means min(#ports, GOMAXPROCS).
	Shards int
	// BatchSize is the number of packets handed to a shard per ring slot.
	// 0 means 256.
	BatchSize int
	// RingDepth is the number of batches buffered per shard before Observe
	// blocks (backpressure onto the producer). 0 means 8.
	RingDepth int
}

// Pipeline ingests dequeued packets through sharded worker goroutines so
// multi-port workloads scale with cores, and moves checkpoint register
// copies off the packet path onto a background snapshot goroutine — the
// software analogue of the paper's per-pipe packet processing and
// double-buffered frozen reads (§6).
//
// Observe/Ingest must be called from a single goroutine with packets in
// per-port dequeue order. Queries and Stats on the owning System remain
// safe to call concurrently while the pipeline runs; Finalize and new
// pipelines must wait until Close returns.
type Pipeline struct {
	inner *control.Pipeline
	sys   *System
}

// StartPipeline switches the system from synchronous ingestion to the
// sharded pipeline. While the pipeline is open the system must be fed only
// through it (not via Observe/Attach on the System itself); a second
// concurrent pipeline is rejected. Close the pipeline to flush, drain, and
// return the system to synchronous mode.
func (s *System) StartPipeline(cfg PipelineConfig) (*Pipeline, error) {
	inner, err := control.NewPipeline(s.inner, control.PipelineConfig{
		Shards:    cfg.Shards,
		BatchSize: cfg.BatchSize,
		RingDepth: cfg.RingDepth,
	})
	if err != nil {
		return nil, err
	}
	return &Pipeline{inner: inner, sys: s}, nil
}

// Observe feeds one dequeued packet to its port's shard. It mirrors
// System.Observe but returns immediately once the packet is buffered;
// processing happens on the shard worker.
func (p *Pipeline) Observe(pkt Packet, enqTime, deqTime uint64, enqDepthCells int) {
	rec := pktrec.Packet{
		Flow:    pkt.Flow.internal(),
		Bytes:   pkt.Bytes,
		Arrival: pkt.Arrival,
		Port:    pkt.Port,
		Queue:   pkt.Queue,
		Meta: pktrec.Metadata{
			EnqTimestamp: enqTime,
			DeqTimedelta: deqTime - enqTime,
			EnqQdepth:    enqDepthCells,
		},
	}
	p.inner.Ingest(&rec)
}

// Attach registers the pipeline as the egress hook on every activated port
// of the switch, replacing the direct System.Attach wiring: dequeued packets
// flow through the shard rings instead of being processed inline on the
// switch's dequeue path. If any activated port does not exist on the
// switch, no hooks are installed and the error names every missing port —
// silently monitoring only a subset would corrupt any diagnosis that
// assumed full coverage.
func (p *Pipeline) Attach(sw *Switch) error {
	ports := p.sys.inner.Config().Ports
	var missing []int
	for _, port := range ports {
		if port >= sw.inner.Ports() {
			missing = append(missing, port)
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("printqueue: activated ports %v not present on switch (switch has ports 0-%d)",
			missing, sw.inner.Ports()-1)
	}
	for _, port := range ports {
		sw.inner.Port(port).AddEgressHook(pipelineAdapter{p.inner})
	}
	return nil
}

type pipelineAdapter struct{ pl *control.Pipeline }

func (a pipelineAdapter) OnDequeue(pkt *pktrec.Packet) { a.pl.Ingest(pkt) }

// Flush pushes partially filled batches to the workers without waiting for
// them to be processed. Call it before issuing queries mid-run if the most
// recent packets must be visible.
func (p *Pipeline) Flush() { p.inner.Flush() }

// Close flushes remaining batches, drains the shard workers and the
// background snapshot goroutine, and returns the System to synchronous
// ingestion. Every packet observed before Close is reflected in subsequent
// queries. Close is idempotent.
func (p *Pipeline) Close() { p.inner.Close() }
