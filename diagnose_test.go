package printqueue

import (
	"strings"
	"testing"
	"time"
)

func TestDiagnose(t *testing.T) {
	sw, err := NewSwitch(SwitchConfig{Ports: 1, LinkBps: 10e9, BufferCells: 60000})
	if err != nil {
		t.Fatal(err)
	}
	pq, err := New(Config{
		TimeWindows:  TimeWindowConfig{M0: 10, K: 12, Alpha: 1, T: 4, MinPktTxDelay: 1200 * time.Nanosecond},
		QueueMonitor: QueueMonitorConfig{MaxDepthCells: 65536, GranuleCells: 19},
		Ports:        []int{0},
	})
	if err != nil {
		t.Fatal(err)
	}
	pq.Attach(sw)
	tlog := sw.AttachLog(0)
	pkts, bg, err := Microburst(MicroburstScenario{
		LinkBps: 10e9, Seed: 6, BurstStart: time.Millisecond, Duration: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkts {
		sw.Inject(p)
	}
	sw.Flush()
	pq.Finalize(sw.Now() + 1)

	victims := tlog.VictimsOf(bg, 0)
	worst := victims[0]
	for _, i := range victims {
		if tlog.Record(i).DepthCells > tlog.Record(worst).DepthCells {
			worst = i
		}
	}
	v := tlog.Record(worst)
	diag, err := pq.Diagnose(0, 0, v.EnqTime, v.DeqTime, tlog.RegimeStart(worst))
	if err != nil {
		t.Fatal(err)
	}
	if diag.Direct.Total() == 0 || diag.Indirect.Total() == 0 || diag.Original.Total() == 0 {
		t.Fatalf("incomplete diagnosis: direct %v indirect %v original %v",
			diag.Direct.Total(), diag.Indirect.Total(), diag.Original.Total())
	}
	// The combined answer matches the individual queries.
	direct, _ := pq.QueryInterval(0, v.EnqTime, v.DeqTime)
	if diag.Direct.Total() != direct.Total() {
		t.Fatalf("Diagnose direct %v != QueryInterval %v", diag.Direct.Total(), direct.Total())
	}
	s := diag.Summary(3)
	for _, want := range []string{"direct culprits", "indirect culprits", "original culprits"} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary missing %q:\n%s", want, s)
		}
	}
	// Without a regime start, the indirect section is skipped.
	diag2, err := pq.Diagnose(0, 0, v.EnqTime, v.DeqTime, 0)
	if err != nil {
		t.Fatal(err)
	}
	if diag2.Indirect != nil {
		t.Fatal("indirect computed without a regime start")
	}
	if strings.Contains(diag2.Summary(3), "indirect") {
		t.Fatal("summary mentions indirect without a regime")
	}
	// Errors propagate.
	if _, err := pq.Diagnose(0, 0, 10, 10, 0); err == nil {
		t.Fatal("empty interval accepted")
	}
	if _, err := pq.Diagnose(7, 0, 10, 20, 0); err == nil {
		t.Fatal("unknown port accepted")
	}
}
